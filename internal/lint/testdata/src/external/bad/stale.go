// A file-scope exemption on a file with nothing to exempt: no concurrency
// imports, no goroutines, no channels. The directive suppresses nothing,
// so tsanvet must report it stale rather than let it rot.
//
// want directive
//
//tsanrec:external whole-file exemption on a file with nothing to exempt
package bad

// PureHelper is plain arithmetic; the discipline has no opinion about it.
func PureHelper(x int) int { return x * x }
