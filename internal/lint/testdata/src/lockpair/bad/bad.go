// Package bad is a lockpair fixture: acquisitions with a release missing
// on at least one path out of the function.
package bad

import (
	"repro/internal/conc"
	"repro/internal/core"
)

func earlyReturn(rt *core.Runtime, t *core.Thread, cond bool) {
	mu := rt.NewMutex("mu")
	mu.Lock(t) // want lockpair
	if cond {
		return // leaks the lock
	}
	mu.Unlock(t)
}

func readLockLeak(rt *core.Runtime, t *core.Thread, n int) int {
	l := conc.NewRWMutex(rt, "l")
	l.RLock(t) // want lockpair
	if n > 0 {
		return n // leaks the read lock
	}
	l.RUnlock(t)
	return 0
}

func wrongReceiver(t *core.Thread, a, b *core.Mutex) {
	a.Lock(t) // want lockpair
	b.Unlock(t)
}

func neverReleased(rt *core.Runtime, t *core.Thread) {
	mu := rt.NewMutex("mu")
	mu.Lock(t) // want lockpair
}
