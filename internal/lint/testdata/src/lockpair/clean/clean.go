// Package clean is a lockpair fixture: the release patterns the check
// accepts — straight-line, deferred, per-branch, aborting paths, TryLock,
// and a waived correlated-guard pair.
package clean

import (
	"repro/internal/conc"
	"repro/internal/core"
)

func straightLine(rt *core.Runtime, t *core.Thread) {
	mu := rt.NewMutex("mu")
	mu.Lock(t)
	mu.Unlock(t)
}

func deferred(rt *core.Runtime, t *core.Thread, cond bool) {
	mu := rt.NewMutex("mu")
	mu.Lock(t)
	defer mu.Unlock(t)
	if cond {
		return
	}
}

func bothBranches(rt *core.Runtime, t *core.Thread, cond bool) {
	mu := rt.NewMutex("mu")
	mu.Lock(t)
	if cond {
		mu.Unlock(t)
		return
	}
	mu.Unlock(t)
}

func abortingPath(rt *core.Runtime, t *core.Thread, cond bool) {
	mu := rt.NewMutex("mu")
	mu.Lock(t)
	if cond {
		panic("fatal: the lock dies with the program")
	}
	mu.Unlock(t)
}

func tryLockUntracked(rt *core.Runtime, t *core.Thread) {
	mu := rt.NewMutex("mu")
	if mu.TryLock(t) {
		mu.Unlock(t)
	}
}

func readersInLoop(rt *core.Runtime, t *core.Thread, n int) {
	l := conc.NewRWMutex(rt, "l")
	for i := 0; i < n; i++ {
		l.RLock(t)
		l.RUnlock(t)
	}
}

// correlatedGuards locks under `hi != lo` and unlocks under the identical
// guard — correct, but beyond a path-insensitive CFG, so it carries the
// documented waiver.
func correlatedGuards(t *core.Thread, grid []*core.Mutex, hi, lo int) {
	if hi != lo {
		grid[hi].Lock(t) //tsanrec:allow(lockpair) fixture: lock and unlock share the identical hi != lo guard
	}
	grid[lo].Lock(t)
	grid[lo].Unlock(t)
	if hi != lo {
		grid[hi].Unlock(t)
	}
}
