// Package clean is a rawgo fixture: scheduler-mediated spawning plus the
// two suppression paths (external span, trailing allow).
package clean

import "repro/internal/core"

func spawned(t *core.Thread) {
	h := t.Spawn("worker", func(u *core.Thread) {})
	t.Join(h)
}

// externalFeeder models outside-world code whose raw concurrency is the
// point; the external span suppresses the rawgo finding inside it.
//
//tsanrec:external fixture: external-world feeder outside the scheduler
func externalFeeder(done func()) {
	go done()
}

func waived(t *core.Thread) {
	go helper() //tsanrec:allow(rawgo) fixture: exercising the trailing allow suppression path
	_ = t
}

func helper() {}
