// Package bad is a rawgo fixture: raw go statements in instrumented code.
package bad

import "repro/internal/core"

func violate(t *core.Thread) {
	go func() {}() // want rawgo
	_ = t
}

func violateNamed(t *core.Thread) {
	go helper() // want rawgo
	_ = t
}

func helper() {}
