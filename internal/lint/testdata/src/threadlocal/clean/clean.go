// Package clean is a threadlocal fixture: the classifier's three core
// shapes. It produces no findings — sharing is not a defect — but its
// sparsity report is pinned byte-for-byte by the analyzer tests.
package clean

import "repro/internal/core"

// run creates one Var that is captured by a spawned closure (shared), one
// Var that never leaves the spawned closure (local: each spawned thread
// creates its own instance), and one atomic threaded through a direct
// call (local: the callee keeps it on the same thread).
func run(rt *core.Runtime) {
	shared := core.NewVar(rt, "clean.shared", 0)
	rt.Run(func(t *core.Thread) {
		h := t.Spawn("worker", func(t *core.Thread) {
			shared.Write(t, 1)
			local := core.NewVar(t.Runtime(), "clean.local", 0)
			local.Write(t, local.Read(t)+1)
			count := t.NewAtomic64("clean.count", 0)
			bump(t, count)
		})
		shared.Write(t, 2)
		t.Join(h)
	})
}

func bump(t *core.Thread, c *core.Atomic64) {
	c.Add(t, 1, core.SeqCst)
}
