// Package clean is a directive hygiene fixture: well-formed directives
// that all pull their weight (none is stale).
package clean

import (
	"time"

	"repro/internal/core"
)

// externalHelper is outside-world code: the external span suppresses both
// the raw go statement and the wall-clock sleep inside it.
//
//tsanrec:external fixture: external-world helper whose raw timing is the point
func externalHelper(done func()) {
	go func() {
		time.Sleep(time.Millisecond)
		done()
	}()
}

func waived(t *core.Thread) {
	_ = time.Now() //tsanrec:allow(rawsync) fixture: exercising trailing allow suppression
}
