// Package bad is a directive hygiene fixture: malformed, unknown, stale
// and dangling //tsanrec:* comments.
package bad

import "repro/internal/core"

// want directive
//
//tsanrec:external
func missingJustification(t *core.Thread) {}

// want directive
//
//tsanrec:allow(rawsync)
func missingReason(t *core.Thread) {}

// want directive
//
//tsanrec:allow(nosuchcheck) the named check does not exist
func unknownCheck(t *core.Thread) {}

// want directive
//
//tsanrec:allow(rawsync the parenthesis never closes
func unclosedParen(t *core.Thread) {}

// want directive
//
//tsanrec:frobnicate not a directive verb
func unknownVerb(t *core.Thread) {}

func stale(t *core.Thread) {
	// want directive
	//tsanrec:allow(rawgo) nothing in the next statement uses a go statement
	_ = t
}

// The file ends on a directive with nothing to attach to.
//
// want directive
//tsanrec:external dangling: no statement or declaration follows
