package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pathHasSuffix reports whether a package path is pkg or ends in /pkg —
// matching "repro/internal/core" against suffix "internal/core" without
// hard-coding the module name (fixtures share the module path anyway, but
// analyzers should not care).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedFrom unwraps pointers and reports whether t is (a pointer to) the
// named type pkgSuffix.name.
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isCoreThread reports whether t is *core.Thread.
func isCoreThread(t types.Type) bool { return namedFrom(t, "internal/core", "Thread") }

// methodOn resolves call's callee as a method and reports whether it is
// method name on (a pointer to) pkgSuffix.typeName. It returns the
// receiver expression for matching lock/unlock pairs.
func methodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName, name string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if !namedFrom(sig.Recv().Type(), pkgSuffix, typeName) {
		return nil, false
	}
	return sel.X, true
}

// threadFuncs collects every function in the package whose parameter list
// includes a *core.Thread — the static signature of "code that runs as a
// scheduler thread". Returns the body nodes keyed by the func node.
func threadFuncs(pkg *Package) map[ast.Node]*ast.BlockStmt {
	out := make(map[ast.Node]*ast.BlockStmt)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			for _, field := range ftype.Params.List {
				if tv, ok := pkg.Info.Types[field.Type]; ok && isCoreThread(tv.Type) {
					out[n] = body
					break
				}
			}
			return true
		})
	}
	return out
}

// parentMap records each node's syntactic parent within a file.
type parentMap map[ast.Node]ast.Node

func buildParents(file *ast.File) parentMap {
	parents := make(parentMap)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingThreadFunc walks up from n to the innermost enclosing function
// that is a thread function (per funcs), or nil.
func enclosingThreadFunc(parents parentMap, funcs map[ast.Node]*ast.BlockStmt, n ast.Node) ast.Node {
	for cur := n; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if _, ok := funcs[cur]; ok {
				return cur
			}
		}
	}
	return nil
}

// position converts a token.Pos through the program's FileSet.
func (p *Program) position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// allFunctions yields every function body in the package (declarations
// and literals) with its describing node.
func allFunctions(pkg *Package, fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch f := n.(type) {
			case *ast.FuncDecl:
				if f.Body != nil {
					fn(n, f.Body)
				}
			case *ast.FuncLit:
				if f.Body != nil {
					fn(n, f.Body)
				}
			}
			return true
		})
	}
}
