// Package lint is a stdlib-only static-analysis framework that enforces
// the instrumentation discipline the record/replay runtime depends on.
//
// The runtime (internal/core) can only record — and therefore only replay —
// what flows through its API: Thread.Spawn, core.Mutex/Cond, core.Atomic64,
// core.Var, and the env syscall wrappers. Any nondeterminism outside that
// API (a raw `go` statement, sync.Mutex, time.Now, math/rand, a bare
// channel) is invisible to the scheduler and silently corrupts recordings,
// surfacing later as unexplainable hard or soft desyncs on replay. For
// tsan11rec the compiler instrumented everything; here nothing does, so
// this package turns the contract into a checked invariant.
//
// The framework loads packages with go/parser + go/types (no external
// module dependencies), runs a set of analyzers over each "instrumented"
// package, and reports findings. Code that legitimately lives outside the
// scheduler — external-world servers, load generators, host-side drivers —
// is marked with //tsanrec:external; single findings are waived with
// //tsanrec:allow(check). Both directives require a justification and both
// must pull their weight: a directive that suppresses nothing is itself a
// finding, so stale annotations cannot accumulate.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Severity classifies a finding.
type Severity int

// Severities. Every finding, regardless of severity, makes tsanvet exit
// nonzero; the distinction is informational (discipline violations are
// errors, directive hygiene problems are warnings).
const (
	SeverityWarning Severity = iota
	SeverityError
)

func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// MarshalText implements encoding.TextMarshaler for -json output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Finding is one analyzer report, anchored to a source position.
type Finding struct {
	Pos      token.Position `json:"pos"`
	Check    string         `json:"check"`
	Message  string         `json:"message"`
	Severity Severity       `json:"severity"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// Analyzer is one discipline check run over a loaded package.
type Analyzer interface {
	// Name is the check name used in findings and //tsanrec:allow(name).
	Name() string
	// Doc is a one-line description of what the check enforces.
	Doc() string
	// Run analyzes pkg and returns raw findings; suppression by
	// //tsanrec:* directives is applied afterwards by the Runner.
	Run(prog *Program, pkg *Package) []Finding
}

// Analyzers returns the full analyzer suite in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		RawGo{},
		RawSync{},
		LockPair{},
		LockOrder{},
		JoinLeak{},
		VarEscape{},
		ThreadLocal{},
	}
}

// AnalyzerNames returns the names of every registered analyzer, including
// the directive hygiene pseudo-check.
func AnalyzerNames() []string {
	names := []string{CheckDirective}
	for _, a := range Analyzers() {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}

// knownCheck reports whether name is a valid //tsanrec:allow target.
func knownCheck(name string) bool {
	for _, n := range AnalyzerNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Run executes the analyzer suite over every package in prog, applies
// directive suppression, appends directive hygiene findings, and returns
// the surviving findings sorted by position.
func Run(prog *Program, analyzers []Analyzer) []Finding {
	return RunPackages(prog, analyzers, prog.Packages)
}

// RunPackages is Run restricted to the given packages (directives are
// file-scoped, so restricting suppression to the same set is exact).
func RunPackages(prog *Program, analyzers []Analyzer, pkgs []*Package) []Finding {
	var raw []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			raw = append(raw, a.Run(prog, pkg)...)
		}
	}
	var kept []Finding
	for _, f := range raw {
		suppressed := false
		for _, pkg := range pkgs {
			if pkg.suppresses(f) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, pkg := range pkgs {
		kept = append(kept, pkg.directiveFindings(prog.Fset)...)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return kept
}

// corePath and friends identify the instrumentation API packages inside
// the module.
const (
	coreSuffix = "/internal/core"
	concSuffix = "/internal/conc"
)

// frameworkDirs are module-relative package paths (and their subtrees)
// that implement the runtime itself and are therefore exempt from the
// discipline: they are the instrumentation, not the instrumented program.
var frameworkDirs = []string{
	"internal/core",
	"internal/conc",
	"internal/sched",
	"internal/env",
	"internal/tsan",
	"internal/demo",
	"internal/vclock",
	"internal/rle",
	"internal/prng",
	"internal/stats",
	"internal/rrmodel",
	"internal/lint",
}

// harnessDirs hold host-side benchmark and tooling binaries. They
// orchestrate runtimes from the outside (wall-clock timing, flag parsing)
// and never run under a scheduler thread, so the nondeterminism checks
// (rawgo, rawsync) do not apply; core-API-misuse checks still do.
var harnessDirs = []string{
	"cmd",
}

func underAny(rel string, dirs []string) bool {
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// Instrumented reports whether pkg is program-under-test code subject to
// the full discipline: it imports the core (or conc) API and is neither
// part of the runtime framework nor a host-side harness binary. Analyzer
// test fixtures under internal/lint/testdata are deliberately counted as
// instrumented so the checks can be exercised on them.
func (p *Program) Instrumented(pkg *Package) bool {
	rel := p.relPath(pkg.ImportPath)
	if strings.Contains(pkg.ImportPath, "/testdata/") {
		return pkg.importsCore()
	}
	if underAny(rel, frameworkDirs) || underAny(rel, harnessDirs) {
		return false
	}
	return pkg.importsCore()
}

// Framework reports whether pkg implements the runtime itself. The
// framework necessarily reaches around its own API (e.g. Cond.wait
// releases a mutex through scheduler surgery rather than Unlock), so the
// core-API-misuse checks (lockpair, joinleak) skip it; its test fixtures
// under testdata are still checked.
func (p *Program) Framework(pkg *Package) bool {
	if strings.Contains(pkg.ImportPath, "/testdata/") {
		return false
	}
	return underAny(p.relPath(pkg.ImportPath), frameworkDirs)
}

// relPath strips the module path prefix from an import path.
func (p *Program) relPath(importPath string) string {
	if importPath == p.ModulePath {
		return "."
	}
	return strings.TrimPrefix(importPath, p.ModulePath+"/")
}

func (pkg *Package) importsCore() bool {
	for _, imp := range pkg.Imports {
		if strings.HasSuffix(imp, coreSuffix) || strings.HasSuffix(imp, concSuffix) {
			return true
		}
	}
	return false
}
