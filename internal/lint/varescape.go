package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// VarEscape flags shared mutable state that bypasses the instrumented
// data API: a global or closure-captured variable that is accessed from
// more than one thread body, with at least one plain (uninstrumented)
// write among those accesses. Such accesses are invisible to the vector
// clocks and the race detector, and — worse for replay — their
// interleaving is decided by the Go memory model, not the recorded
// schedule, so two replays of the same demo can legitimately disagree.
// Route the state through core.Var, core.Atomic64/32, or a conc
// container.
//
// Heuristics, documented rather than hidden:
//   - "thread body" means any function whose parameters include a
//     *core.Thread — the static signature of running under the scheduler;
//   - declaring writes (`x := ...`) do not count: initialisation before
//     Spawn is published by the spawn happens-before edge;
//   - read-only sharing is allowed for the same reason;
//   - values whose type lives in the runtime's own packages (core.Var,
//     conc.Queue, env.World, ...) are the instrumented channel and are
//     exempt.
type VarEscape struct{}

// Name implements Analyzer.
func (VarEscape) Name() string { return "varescape" }

// Doc implements Analyzer.
func (VarEscape) Doc() string {
	return "globals/captured variables written and shared across thread bodies must go through core.Var/core.Atomic*"
}

// safeTypePkgs are package-path suffixes whose types are instrumented (or
// host-side) machinery rather than raw shared state.
var safeTypePkgs = []string{
	"internal/core", "internal/conc", "internal/env", "internal/demo",
	"internal/prng", "internal/stats", "internal/sched", "internal/tsan",
	"internal/vclock", "internal/rle", "internal/rrmodel",
}

// access records one touch of a tracked object from a thread body.
type access struct {
	body  ast.Node
	write bool
	pos   string
}

// Run implements Analyzer.
func (VarEscape) Run(prog *Program, pkg *Package) []Finding {
	if !prog.Instrumented(pkg) {
		return nil
	}
	funcs := threadFuncs(pkg)
	if len(funcs) == 0 {
		return nil
	}
	accesses := make(map[*types.Var][]access)
	for _, file := range pkg.Files {
		parents := buildParents(file)
		writeRoots := collectWriteRoots(file)
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pkg.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			tf := enclosingThreadFunc(parents, funcs, id)
			if tf == nil {
				return true
			}
			pos := prog.position(id.Pos())
			if pkg.externalSpan(pos) {
				return true
			}
			if !capturedBy(v, tf, pkg) {
				return true
			}
			if safeSharedType(v.Type()) {
				return true
			}
			accesses[v] = append(accesses[v], access{
				body:  tf,
				write: writeRoots[id],
				pos:   fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line),
			})
			return true
		})
	}

	var objs []*types.Var
	for v := range accesses {
		objs = append(objs, v)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	var fs []Finding
	for _, v := range objs {
		as := accesses[v]
		bodies := make(map[ast.Node]bool)
		anyWrite := false
		var sites []string
		for _, a := range as {
			bodies[a.body] = true
			anyWrite = anyWrite || a.write
			kind := "read"
			if a.write {
				kind = "write"
			}
			sites = append(sites, a.pos+" ("+kind+")")
		}
		if len(bodies) < 2 || !anyWrite {
			continue
		}
		if len(sites) > 4 {
			sites = append(sites[:4], "...")
		}
		fs = append(fs, Finding{
			Pos:      prog.position(v.Pos()),
			Check:    "varescape",
			Severity: SeverityError,
			Message: fmt.Sprintf("%q is shared across %d thread bodies with an uninstrumented write (%s): the accesses are invisible to the recorder and race detector; use core.Var/core.Atomic* (or waive with //tsanrec:allow(varescape))",
				v.Name(), len(bodies), strings.Join(sites, ", ")),
		})
	}
	return fs
}

// collectWriteRoots marks identifiers that are the root of a write target:
// the x in `x = ...`, `x.f = ...`, `x[i] = ...`, `x++`, `&x`, and range
// assignment targets. Declarations (`x := ...`) are initialisation, not
// shared-state writes, and are excluded.
func collectWriteRoots(file *ast.File) map[*ast.Ident]bool {
	writes := make(map[*ast.Ident]bool)
	mark := func(e ast.Expr) {
		if id := rootIdent(e); id != nil {
			writes[id] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok.String() == ":=" {
				return true
			}
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		case *ast.UnaryExpr:
			if st.Op.String() == "&" {
				// Taking the address lets anyone write through it; treat
				// conservatively as a write.
				mark(st.X)
			}
		case *ast.RangeStmt:
			if st.Tok.String() == "=" {
				mark(st.Key)
				mark(st.Value)
			}
		}
		return true
	})
	return writes
}

// rootIdent peels selectors, indexes, stars and parens down to the base
// identifier of an lvalue.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capturedBy reports whether v is shared state from tf's point of view: a
// package-level variable, or a local declared outside tf's span (i.e.
// captured by the closure).
func capturedBy(v *types.Var, tf ast.Node, pkg *Package) bool {
	if v.Parent() == pkg.Types.Scope() {
		return true
	}
	return v.Pos() < tf.Pos() || v.Pos() > tf.End()
}

// safeSharedType unwraps pointers, slices, arrays and maps and reports
// whether the element type belongs to the runtime's own packages (the
// instrumented API) — such values are safe to share.
func safeSharedType(t types.Type) bool {
	for i := 0; i < 8; i++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			i = 8
		}
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for _, sfx := range safeTypePkgs {
		if pathHasSuffix(obj.Pkg().Path(), sfx) {
			return true
		}
	}
	return false
}

// shortFile trims the module-root prefix for compact finding messages.
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
