package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CheckDirective is the pseudo-check name for directive hygiene findings
// (malformed, dangling or stale //tsanrec:* comments).
const CheckDirective = "directive"

// The two directive verbs:
//
//	//tsanrec:external <justification>
//	    Marks a function, statement or declaration as external-world code
//	    that legitimately bypasses the scheduler (servers, load
//	    generators, host-side drivers). All checks are suppressed inside
//	    its span.
//
//	//tsanrec:allow(<check>) <justification>
//	    Suppresses findings of one named check inside the attached node's
//	    span.
//
// Both forms require a justification, and a directive that suppresses
// nothing is reported as stale — annotations must stay load-bearing.
type directive struct {
	verb      string
	check     string // for allow
	reason    string
	pos       token.Position
	malformed string         // non-empty: why the directive is invalid
	spanStart token.Position // attached node extent (zero if dangling)
	spanEnd   token.Position
	fileScope bool // appeared before the package clause: spans the file
	used      bool
}

const directivePrefix = "//tsanrec:"

// parseDirectives extracts and attaches every //tsanrec:* comment in the
// package's files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var ds []*directive
	for _, file := range files {
		candidates := attachCandidates(file)
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := parseOne(c.Text)
				d.pos = fset.Position(c.Pos())
				if d.malformed == "" {
					if group.End() < file.Package {
						// File-scope form: a directive before the package
						// clause spans the entire file (used for whole-file
						// external infrastructure like internal/obs).
						d.fileScope = true
						d.spanStart = token.Position{Filename: d.pos.Filename, Line: 1, Column: 1}
						d.spanEnd = fset.Position(file.End())
						if d.verb == "external" {
							// Staleness for a file-scope external span cannot
							// rely on analyzer hits (the package may not be
							// instrumented at all), so it is syntactic: the
							// file must actually contain constructs the
							// discipline polices.
							d.used = fileNeedsDiscipline(file)
						}
					} else {
						attach(fset, d, c, group, candidates)
					}
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// fileNeedsDiscipline reports whether a file contains anything the
// instrumentation discipline covers: raw concurrency imports, goroutine
// launches, or channel operations. A file-scope //tsanrec:external on a
// file with none of these suppresses nothing and is therefore stale.
func fileNeedsDiscipline(file *ast.File) bool {
	for _, imp := range file.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "sync", "sync/atomic", "time", "math/rand":
			return true
		}
	}
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.SendStmt, *ast.SelectStmt, *ast.ChanType:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

func parseOne(text string) *directive {
	rest := strings.TrimPrefix(text, directivePrefix)
	d := &directive{}
	switch {
	case strings.HasPrefix(rest, "external"):
		d.verb = "external"
		d.reason = strings.TrimSpace(strings.TrimPrefix(rest, "external"))
		if d.reason == "" {
			d.malformed = "//tsanrec:external requires a justification"
		}
	case strings.HasPrefix(rest, "allow("):
		d.verb = "allow"
		body := strings.TrimPrefix(rest, "allow(")
		close := strings.IndexByte(body, ')')
		if close < 0 {
			d.malformed = "//tsanrec:allow is missing the closing parenthesis"
			return d
		}
		d.check = body[:close]
		d.reason = strings.TrimSpace(body[close+1:])
		if !knownCheck(d.check) {
			d.malformed = fmt.Sprintf("//tsanrec:allow names unknown check %q (known: %s)", d.check, strings.Join(AnalyzerNames(), ", "))
		} else if d.reason == "" {
			d.malformed = fmt.Sprintf("//tsanrec:allow(%s) requires a justification", d.check)
		}
	default:
		verb := rest
		if i := strings.IndexAny(verb, " (\t"); i >= 0 {
			verb = verb[:i]
		}
		d.verb = verb
		d.malformed = fmt.Sprintf("unknown directive //tsanrec:%s (known: external, allow)", verb)
	}
	return d
}

// attachCandidates returns the nodes a directive can bind to: every
// declaration and statement except plain blocks (a directive on a closing
// brace line must not silently bind to the whole surrounding block).
func attachCandidates(file *ast.File) []ast.Node {
	var nodes []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Decl:
			nodes = append(nodes, n)
		case *ast.BlockStmt:
			// skip
		case ast.Stmt:
			nodes = append(nodes, n)
		}
		return true
	})
	return nodes
}

// attach binds d to a node: either the statement the comment trails on the
// same line, or the first statement/declaration starting on the line right
// after the comment group.
func attach(fset *token.FileSet, d *directive, c *ast.Comment, group *ast.CommentGroup, candidates []ast.Node) {
	line := fset.Position(c.Pos()).Line
	groupEnd := fset.Position(group.End()).Line

	// Trailing form: `go func() { ... }() //tsanrec:external reason`.
	// Pick the outermost candidate ending on the comment's line before it.
	var trailing ast.Node
	for _, n := range candidates {
		if fset.Position(n.End()).Line == line && n.End() <= c.Pos() {
			if trailing == nil || n.Pos() < trailing.Pos() {
				trailing = n
			}
		}
	}
	if trailing != nil {
		d.spanStart = fset.Position(trailing.Pos())
		d.spanEnd = fset.Position(trailing.End())
		return
	}

	// Preceding form: bind to the nearest following node, which must start
	// on the line immediately after the comment group (doc comments on a
	// func/decl satisfy this naturally).
	var next ast.Node
	for _, n := range candidates {
		if n.Pos() > c.End() {
			if next == nil || n.Pos() < next.Pos() {
				next = n
			}
		}
	}
	if next == nil || fset.Position(next.Pos()).Line > groupEnd+1 {
		d.malformed = "dangling directive: no statement or declaration on the next line"
		return
	}
	d.spanStart = fset.Position(next.Pos())
	d.spanEnd = fset.Position(next.End())
}

func posWithin(p, start, end token.Position) bool {
	if p.Filename != start.Filename {
		return false
	}
	if p.Line < start.Line || (p.Line == start.Line && p.Column < start.Column) {
		return false
	}
	if p.Line > end.Line || (p.Line == end.Line && p.Column > end.Column) {
		return false
	}
	return true
}

// externalSpan reports whether the position lies inside any well-formed
// //tsanrec:external span of the package. Analyzers use it to skip
// external-world code wholesale.
func (pkg *Package) externalSpan(p token.Position) bool {
	for _, d := range pkg.directives {
		if d.malformed == "" && d.verb == "external" && posWithin(p, d.spanStart, d.spanEnd) {
			d.used = true
			return true
		}
	}
	return false
}

// suppresses applies //tsanrec:allow (and, as a backstop, external spans)
// to a finding, marking matching directives as used.
func (pkg *Package) suppresses(f Finding) bool {
	hit := false
	for _, d := range pkg.directives {
		if d.malformed != "" || !posWithin(f.Pos, d.spanStart, d.spanEnd) {
			continue
		}
		switch d.verb {
		case "external":
			if f.Check != CheckDirective {
				d.used = true
				hit = true
			}
		case "allow":
			if d.check == f.Check {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// directiveFindings reports malformed and stale directives.
func (pkg *Package) directiveFindings(fset *token.FileSet) []Finding {
	var fs []Finding
	for _, d := range pkg.directives {
		switch {
		case d.malformed != "":
			fs = append(fs, Finding{Pos: d.pos, Check: CheckDirective, Severity: SeverityWarning, Message: d.malformed})
		case !d.used:
			name := "//tsanrec:" + d.verb
			if d.verb == "allow" {
				name += "(" + d.check + ")"
			}
			msg := fmt.Sprintf("stale %s: it suppresses no finding; remove it or fix the span", name)
			if d.fileScope {
				msg = fmt.Sprintf("stale file-scope %s: the file uses no construct the discipline covers; remove it", name)
			}
			fs = append(fs, Finding{Pos: d.pos, Check: CheckDirective, Severity: SeverityWarning,
				Message: msg})
		}
	}
	return fs
}
