package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a loaded set of packages sharing one FileSet and type
// universe.
type Program struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path declared in go.mod
	Packages   []*Package

	byPath map[string]*Package
	std    types.Importer
	inter  *interState // lazily-built whole-program call-graph state
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Imports    []string

	directives []*directive
	loading    bool
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: %s/go.mod has no module directive", root)
}

// NewProgram prepares an empty program rooted at the module containing
// dir.
func NewProgram(dir string) (*Program, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Program{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: mod,
		byPath:     make(map[string]*Package),
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Load resolves the given patterns and loads (parses + type-checks) every
// matched package. Patterns follow the go tool's shape: "./..." and
// "dir/..." walk directory trees (skipping testdata, vendor and dot
// directories); other arguments name a single directory, relative to cwd.
func (p *Program) Load(cwd string, patterns []string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = cwd
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(cwd, base)
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if !hasGoFiles(dir) {
			return fmt.Errorf("lint: no Go files in %s", dir)
		}
		add(dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if _, err := p.loadDir(dir); err != nil {
			return err
		}
	}
	return nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && goSourceName(e.Name()) {
			return true
		}
	}
	return false
}

// goSourceName reports whether name is a non-test Go source file. Test
// files are the harness around the program under test, not the program
// itself, so the discipline does not apply to them.
func goSourceName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (p *Program) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(p.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, p.ModuleRoot)
	}
	if rel == "." {
		return p.ModulePath, nil
	}
	return p.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (p *Program) dirFor(importPath string) string {
	if importPath == p.ModulePath {
		return p.ModuleRoot
	}
	return filepath.Join(p.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(importPath, p.ModulePath+"/")))
}

// loadDir loads the package in dir (and, transitively, any module-internal
// packages it imports), returning the cached instance on repeat calls.
func (p *Program) loadDir(dir string) (*Package, error) {
	importPath, err := p.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return p.loadImportPath(importPath)
}

func (p *Program) loadImportPath(importPath string) (*Package, error) {
	if pkg, ok := p.byPath[importPath]; ok {
		if pkg.loading {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	dir := p.dirFor(importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, loading: true}
	p.byPath[importPath] = pkg

	var names []string
	for _, e := range entries {
		if !e.IsDir() && goSourceName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		delete(p.byPath, importPath)
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	for _, name := range names {
		file, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			delete(p.byPath, importPath)
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}

	// Load module-internal imports first so type-checking below can
	// resolve them from the cache.
	importSet := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			importSet[path] = true
		}
	}
	for path := range importSet {
		pkg.Imports = append(pkg.Imports, path)
	}
	sort.Strings(pkg.Imports)
	for _, path := range pkg.Imports {
		if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
			if _, err := p.loadImportPath(path); err != nil {
				return nil, err
			}
		}
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*progImporter)(p),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, p.Fset, pkg.Files, pkg.Info)
	if err != nil && tpkg == nil {
		delete(p.byPath, importPath)
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	if len(typeErrs) > 0 {
		delete(p.byPath, importPath)
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErrs[0])
	}
	pkg.Types = tpkg
	pkg.directives = parseDirectives(p.Fset, pkg.Files)
	pkg.loading = false
	p.Packages = append(p.Packages, pkg)
	return pkg, nil
}

// progImporter resolves imports during type-checking: module-internal
// packages come from the program's own source loader, everything else from
// the stdlib source importer (sharing the program's FileSet).
type progImporter Program

func (pi *progImporter) Import(path string) (*types.Package, error) {
	p := (*Program)(pi)
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		pkg, err := p.loadImportPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}
