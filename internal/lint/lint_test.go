package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// wantKey identifies one expected finding parsed from a fixture comment.
type wantKey struct {
	file  string // base name of the fixture file
	line  int
	check string
}

// parseWant extracts `// want <check>...` markers from every fixture file
// in dir. A trailing marker refers to its own line; a marker alone on its
// line refers to the line below it (needed for directive findings, whose
// anchor line is itself a comment).
func parseWant(t *testing.T, dir string) map[wantKey]int {
	t.Helper()
	want := make(map[wantKey]int)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		const marker = "// want "
		lines := strings.Split(string(data), "\n")
		for i, ln := range lines {
			idx := strings.Index(ln, marker)
			if idx < 0 {
				continue
			}
			target := i + 1 // 1-based line of the marker itself
			if strings.TrimSpace(ln[:idx]) == "" {
				// Standalone marker: refers to the next substantive line,
				// skipping gofmt's blank `//` separator comments.
				target++
				for target-1 < len(lines) && strings.TrimSpace(lines[target-1]) == "//" {
					target++
				}
			}
			for _, check := range strings.Fields(ln[idx+len(marker):]) {
				want[wantKey{e.Name(), target, check}]++
			}
		}
	}
	return want
}

// TestAnalyzersOnFixtures runs the full suite over every golden fixture
// package under testdata/src/<check>/{bad,clean} and compares the findings
// against the fixtures' `// want` markers. Clean fixtures double as the
// suppression tests: their directives must silence the seeded violations
// without themselves being reported stale.
func TestAnalyzersOnFixtures(t *testing.T) {
	root := moduleRootForTest(t)
	prog, err := NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal", "lint", "testdata", "src")
	checkDirs, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkDirs) == 0 {
		t.Fatal("no fixture directories under testdata/src")
	}
	for _, checkDir := range checkDirs {
		if !checkDir.IsDir() {
			continue
		}
		for _, kind := range []string{"bad", "clean"} {
			dir := filepath.Join(src, checkDir.Name(), kind)
			if _, err := os.Stat(dir); os.IsNotExist(err) {
				// Some checks have only one side: threadlocal is a
				// classifier whose "findings" are report entries, so it has
				// no bad fixture.
				continue
			}
			t.Run(checkDir.Name()+"/"+kind, func(t *testing.T) {
				if err := prog.Load(dir, []string{dir}); err != nil {
					t.Fatal(err)
				}
				importPath, err := prog.importPathFor(dir)
				if err != nil {
					t.Fatal(err)
				}
				pkg := prog.byPath[importPath]
				if pkg == nil {
					t.Fatalf("package %s not loaded", importPath)
				}
				want := parseWant(t, dir)
				if kind == "bad" && len(want) == 0 {
					t.Fatal("bad fixture carries no // want markers")
				}
				if kind == "clean" && len(want) != 0 {
					t.Fatal("clean fixture must not carry // want markers")
				}
				for _, f := range RunPackages(prog, Analyzers(), []*Package{pkg}) {
					k := wantKey{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check}
					if want[k] > 0 {
						want[k]--
						if want[k] == 0 {
							delete(want, k)
						}
						continue
					}
					t.Errorf("unexpected finding: %s", f)
				}
				for k, n := range want {
					t.Errorf("missing finding: %s:%d [%s] (x%d)", k.file, k.line, k.check, n)
				}
			})
		}
	}
}

// TestSharingReportBytes pins the threadlocal sparsity report for the
// clean fixture at the analyzer layer: entry order (sorted by name), the
// JSON field names, and the module-relative positions that make the bytes
// machine-independent. cmd/tsanvet has a matching CLI-level golden.
func TestSharingReportBytes(t *testing.T) {
	root := moduleRootForTest(t)
	prog, err := NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "threadlocal", "clean")
	if err := prog.Load(dir, []string{dir}); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(Sharing(prog), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "module": "repro",
  "tool": "tsanvet/threadlocal",
  "entries": [
    {
      "name": "clean.count",
      "kind": "atomic64",
      "pos": "internal/lint/testdata/src/threadlocal/clean/clean.go:19:13",
      "local": true
    },
    {
      "name": "clean.local",
      "kind": "var",
      "pos": "internal/lint/testdata/src/threadlocal/clean/clean.go:17:13",
      "local": true
    },
    {
      "name": "clean.shared",
      "kind": "var",
      "pos": "internal/lint/testdata/src/threadlocal/clean/clean.go:13:12",
      "local": false,
      "reason": "captured by a closure passed to Thread.Spawn, which runs on another thread"
    }
  ]
}`
	if string(data) != want {
		t.Errorf("sharing report drifted\n--- got ---\n%s\n--- want ---\n%s", data, want)
	}
}

// TestRepoIsClean is the acceptance property behind `tsanvet ./...`: the
// repository's own tree must produce zero findings.
func TestRepoIsClean(t *testing.T) {
	root := moduleRootForTest(t)
	prog, err := NewProgram(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Load(root, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(prog, Analyzers()) {
		t.Errorf("repo not tsanvet-clean: %s", f)
	}
}

func TestParseDirectiveText(t *testing.T) {
	cases := []struct {
		text      string
		malformed bool
	}{
		{"//tsanrec:external models an outside server", false},
		{"//tsanrec:external", true},
		{"//tsanrec:allow(rawgo) host-side helper", false},
		{"//tsanrec:allow(rawgo)", true},
		{"//tsanrec:allow(nosuchcheck) reason", true},
		{"//tsanrec:allow(rawgo reason", true},
		{"//tsanrec:frobnicate reason", true},
	}
	for _, c := range cases {
		d := parseOne(c.text)
		if got := d.malformed != ""; got != c.malformed {
			t.Errorf("parseOne(%q): malformed=%v (%q), want malformed=%v", c.text, got, d.malformed, c.malformed)
		}
	}
}

func TestAnalyzerNamesAreKnown(t *testing.T) {
	names := AnalyzerNames()
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate analyzer name %q", n)
		}
		seen[n] = true
		if !knownCheck(n) {
			t.Errorf("name %q not accepted by knownCheck", n)
		}
	}
	for _, required := range []string{"rawgo", "rawsync", "lockpair", "lockorder", "joinleak", "varescape", "threadlocal", CheckDirective} {
		if !seen[required] {
			t.Errorf("analyzer %q missing from AnalyzerNames", required)
		}
	}
	if knownCheck("nosuchcheck") {
		t.Error("knownCheck accepted an unknown name")
	}
}
