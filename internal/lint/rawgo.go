package lint

import (
	"go/ast"
)

// RawGo flags raw `go` statements in instrumented packages. A goroutine
// started outside Thread.Spawn is invisible to the scheduler: none of its
// operations are ticked, none of its synchronisation is recorded, and any
// interaction with instrumented state desyncs replay. External-world code
// (servers, load generators) is exempted with //tsanrec:external.
type RawGo struct{}

// Name implements Analyzer.
func (RawGo) Name() string { return "rawgo" }

// Doc implements Analyzer.
func (RawGo) Doc() string {
	return "raw `go` statements in instrumented code must be Thread.Spawn (or marked //tsanrec:external)"
}

// Run implements Analyzer.
func (RawGo) Run(prog *Program, pkg *Package) []Finding {
	if !prog.Instrumented(pkg) {
		return nil
	}
	var fs []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pos := prog.position(g.Pos())
			if pkg.externalSpan(pos) {
				return true
			}
			fs = append(fs, Finding{
				Pos:      pos,
				Check:    "rawgo",
				Severity: SeverityError,
				Message:  "raw `go` statement: the goroutine is invisible to the scheduler and unrecorded; use Thread.Spawn, or mark external-world code //tsanrec:external",
			})
			return true
		})
	}
	return fs
}
