// Command tsantrace validates and summarises execution traces produced by
// the -trace flag of the bench drivers (Chrome trace_event JSON, viewable
// in chrome://tracing or https://ui.perfetto.dev).
//
// Usage:
//
//	tsantrace [-stats] [-top N] trace.json
//
// The trace is structurally validated: every event needs a name and a
// known phase, and per-track timestamps must be monotonic (trace order is
// tick order, so a non-monotonic track means the exporter or tracer is
// broken). Exit status: 0 for a valid trace, 1 for a file that cannot be
// read or validated, 2 for a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tsantrace", flag.ContinueOnError)
	fs.SetOutput(errOut)
	statsFlag := fs.Bool("stats", false, "print a per-event-name count table")
	top := fs.Int("top", 10, "number of event names in the summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errOut, "usage: tsantrace [-stats] [-top N] <trace.json>")
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	ts, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(errOut, "invalid trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "valid Chrome trace: %d events on %d tracks, ts %.0f..%.0f\n",
		ts.Events, ts.Threads, ts.MinTS, ts.MaxTS)

	names := make([]string, 0, len(ts.ByName))
	for name := range ts.ByName {
		names = append(names, name)
	}
	// Most frequent first; ties alphabetical so output is deterministic.
	sort.Slice(names, func(i, j int) bool {
		if ts.ByName[names[i]] != ts.ByName[names[j]] {
			return ts.ByName[names[i]] > ts.ByName[names[j]]
		}
		return names[i] < names[j]
	})
	shown := names
	if !*statsFlag && len(shown) > *top {
		shown = shown[:*top]
	}
	tbl := &stats.Table{Header: []string{"event", "count"}}
	for _, name := range shown {
		tbl.AddRow(name, fmt.Sprintf("%d", ts.ByName[name]))
	}
	fmt.Fprint(out, tbl.String())
	if !*statsFlag && len(names) > len(shown) {
		fmt.Fprintf(out, "(%d more event names; -stats shows all)\n", len(names)-len(shown))
	}

	if *statsFlag {
		tracks := make([]int64, 0, len(ts.ByTrack))
		for tr := range ts.ByTrack {
			tracks = append(tracks, tr)
		}
		sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
		ttbl := &stats.Table{Header: []string{"track", "events"}}
		for _, tr := range tracks {
			ttbl.AddRow(trackName(tr), fmt.Sprintf("%d", ts.ByTrack[tr]))
		}
		fmt.Fprint(out, ttbl.String())
	}
	return 0
}

// trackName renders a Chrome tid, unfolding the synthetic tracks the
// exporter reserves for the scheduler and the external world.
func trackName(tid int64) string {
	switch tid {
	case 1_000_000:
		return "scheduler"
	case 1_000_001:
		return "external"
	default:
		return fmt.Sprintf("thread %d", tid)
	}
}
