package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	tr := obs.NewTracer(64)
	tr.Emit(obs.Event{Tick: 1, TID: 0, Kind: obs.KindSpawn, Arg: 1})
	tr.Emit(obs.Event{Tick: 2, TID: 1, Kind: obs.KindMutexLock, Obj: 0x7})
	tr.Emit(obs.Event{Tick: 3, TID: 0, Kind: obs.KindSchedule})
	tr.Emit(obs.Event{TID: -1, Kind: obs.KindExternal, Obj: 80})
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr.Snapshot(), map[int32]string{0: "main", 1: "worker"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidTrace(t *testing.T) {
	path := writeTrace(t)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "valid Chrome trace") {
		t.Fatalf("missing summary line:\n%s", got)
	}
	for _, want := range []string{"spawn", "mutex_lock", "schedule", "external"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing event name %q:\n%s", want, got)
		}
	}
}

func TestStatsShowsTracks(t *testing.T) {
	path := writeTrace(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-stats", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"scheduler", "external", "thread 0", "thread 1"} {
		if !strings.Contains(got, want) {
			t.Errorf("-stats missing track %q:\n%s", want, got)
		}
	}
}

func TestInvalidTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d for invalid trace, want 1", code)
	}
	if !strings.Contains(errOut.String(), "invalid trace") {
		t.Fatalf("stderr %q", errOut.String())
	}
}

func TestUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for missing args, want 2", code)
	}
}
