package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/demo"
	"repro/internal/explore"
)

// TestRacehuntSmoke is the CI smoke flow: a small budget over ms-queue
// with 4 workers must run trials, find at least one failure, and emit a
// corpus plus a valid minimized demo.
func TestRacehuntSmoke(t *testing.T) {
	dir := t.TempDir()
	demoPath := filepath.Join(dir, "race.demo")
	corpusPath := filepath.Join(dir, "corpus.json")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-program", "ms-queue", "-strategies", "rnd",
		"-trials", "16", "-workers", "4", "-seed", "7",
		"-min-budget", "16",
		"-corpus", corpusPath, "-o", demoPath,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("racehunt exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "ran 16 trials") {
		t.Fatalf("expected 16 trials to run:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "failure 0:") {
		t.Fatalf("ms-queue sweep found no failure:\n%s", out.String())
	}

	d, err := demo.ReadFile(demoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("written demo does not validate: %v", err)
	}

	c, err := explore.ReadCorpusFile(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if c.Program != "ms-queue" || len(c.Entries) == 0 {
		t.Fatalf("corpus malformed: %+v", c)
	}
	for i, e := range c.Entries {
		cd, err := e.Decode()
		if err != nil {
			t.Fatalf("corpus entry %d: %v", i, err)
		}
		if err := cd.Validate(); err != nil {
			t.Fatalf("corpus entry %d demo invalid: %v", i, err)
		}
		// The repro field is the exact tsandebug invocation for this
		// failure: extracted demo path plus the raced variable as the
		// reverse-continue target.
		if !strings.HasPrefix(e.Repro, "tsandebug -program ms-queue -demo "+e.DemoPath) {
			t.Fatalf("corpus entry %d: malformed repro %q", i, e.Repro)
		}
		if _, err := os.Stat(filepath.Join(dir, e.DemoPath)); err != nil {
			t.Fatalf("corpus entry %d: extracted demo missing: %v", i, err)
		}
		if len(e.Races) > 0 && !strings.Contains(e.Repro, "reverse-continue msq.") {
			t.Fatalf("corpus entry %d: repro lacks raced-variable reverse-continue: %q", i, e.Repro)
		}
	}
}

func TestRacehuntUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-program", "no-such-program"},
		{"-strategies", "bogus"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

func TestRacehuntNoFailureExit(t *testing.T) {
	// The barrier program is race-free under the random strategy with a
	// tiny budget almost always; -o with no failure must exit nonzero so
	// scripts notice. If the sweep does find a failure the demo must
	// exist instead — accept either, but the exit code and file state
	// have to agree.
	dir := t.TempDir()
	demoPath := filepath.Join(dir, "none.demo")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-program", "barrier", "-strategies", "rnd",
		"-trials", "2", "-workers", "1", "-minimize=false", "-o", demoPath,
	}, &out, &errOut)
	_, statErr := os.Stat(demoPath)
	switch code {
	case 0:
		if statErr != nil {
			t.Fatalf("exit 0 but no demo written:\n%s", out.String())
		}
	case 1:
		if statErr == nil {
			t.Fatalf("exit 1 but a demo was written:\n%s%s", out.String(), errOut.String())
		}
	default:
		t.Fatalf("unexpected exit %d:\n%s%s", code, out.String(), errOut.String())
	}
}
