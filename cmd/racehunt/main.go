// Command racehunt sweeps seeds and strategies over a litmus program until
// a data race manifests, then saves the recorded demo so the failure can
// be replayed forever — the find-record-replay workflow the paper's
// combination of techniques enables (§1: finding races that arise under
// rare schedules such that the schedule leading to the race can be
// replayed for debugging).
//
// Usage:
//
//	racehunt [-program mcs-lock] [-strategies rnd,queue,pct] [-max 10000] [-o race.demo]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps/litmus"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/obs"
)

func main() {
	programName := flag.String("program", "mcs-lock", "litmus program to hunt in")
	strategies := flag.String("strategies", "rnd,pct,delay,queue", "strategies to sweep")
	maxSeeds := flag.Int("max", 10000, "seeds per strategy")
	out := flag.String("o", "", "write the racy demo to this file")
	verify := flag.Bool("verify", true, "replay the demo and confirm the race reproduces")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the hunt's tail to this path")
	metricsFlag := flag.Bool("metrics", false, "print the observability metrics table at exit")
	flag.Parse()
	sess := obs.NewSession(*tracePath, *metricsFlag)

	p, ok := litmus.ByName(*programName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown program %q; available:", *programName)
		for _, q := range litmus.Programs {
			fmt.Fprintf(os.Stderr, " %s", q.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	stratOf := map[string]demo.Strategy{
		"rnd": demo.StrategyRandom, "queue": demo.StrategyQueue,
		"pct": demo.StrategyPCT, "delay": demo.StrategyDelay,
	}
	for _, name := range strings.Split(*strategies, ",") {
		strat, ok := stratOf[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("hunting with %s...\n", name)
		attempts := 0
		for seed := uint64(1); seed <= uint64(*maxSeeds); seed++ {
			attempts++
			rt, err := core.New(core.Options{
				Strategy: strat, Seed1: seed, Seed2: seed * 2654435761,
				Record: true, ReportRaces: true,
				Trace: sess.Tracer, Metrics: sess.Metrics,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep, err := rt.Run(p.Body(rt))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if rep.RaceCount() == 0 {
				continue
			}
			fmt.Printf("  race found after %d attempts (seed %d):\n", attempts, seed)
			for _, r := range rep.Races {
				fmt.Printf("    %v\n", r)
			}
			if *verify {
				rt2, err := core.New(core.Options{Strategy: strat, Replay: rep.Demo, ReportRaces: true,
					Trace: sess.Tracer, Metrics: sess.Metrics})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				rep2, err := rt2.Run(p.Body(rt2))
				if err != nil {
					fmt.Fprintf(os.Stderr, "  replay failed: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("  replay: races=%d softDesync=%v\n", rep2.RaceCount(), rep2.SoftDesync)
			}
			if *out != "" {
				if err := rep.Demo.WriteFile(*out); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("  demo written to %s (%d bytes); inspect with demoinspect\n",
					*out, rep.Demo.Size())
			}
			break
		}
		if attempts == *maxSeeds {
			fmt.Printf("  no race in %d attempts\n", attempts)
		}
	}
	if err := sess.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
