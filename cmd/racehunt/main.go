// Command racehunt sweeps controlled trials over a litmus program until
// data races (or deadlocks) manifest, then ships every distinct failure
// as a small replayable demo — the find-record-replay workflow the
// paper's combination of techniques enables (§1: finding races that arise
// under rare schedules such that the schedule leading to the race can be
// replayed for debugging).
//
// The hunting itself is internal/explore's job: trials shard across a
// worker pool, failures dedupe by signature, and each distinct failure's
// recording is minimized by re-validated replay. racehunt is the flag
// surface plus reporting.
//
// Usage:
//
//	racehunt [-program ms-queue] [-strategies rnd,pct,delay,queue]
//	         [-trials 256] [-workers 0] [-wall 0] [-seed 1]
//	         [-mutate] [-mutation-budget 0] [-seed-corpus corpus.json]
//	         [-minimize] [-min-budget 48]
//	         [-corpus corpus.json] [-o race.demo] [-verify]
//	         [-trace trace.json] [-metrics] [-record-dir dir]
//
// With -mutate the hunt runs two trial sources side by side: the usual
// strategy × seed rotation, and a mutation queue that perturbs recorded
// demos from earlier trials (swap adjacent schedule ticks, shift or inject
// async deliveries, drop/duplicate signals, truncate-and-extend) and
// replays each candidate divergence-tolerantly. A mutant that fails with a
// fresh signature lands in the corpus like any other failure, carrying its
// lineage (root ancestor plus operator chain).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/apps/litmus"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/explore"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

var stratOf = map[string]demo.Strategy{
	"rnd": demo.StrategyRandom, "queue": demo.StrategyQueue,
	"pct": demo.StrategyPCT, "delay": demo.StrategyDelay,
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("racehunt", flag.ContinueOnError)
	fs.SetOutput(errOut)
	programName := fs.String("program", "ms-queue", "litmus program to hunt in")
	strategies := fs.String("strategies", "rnd,pct,delay,queue", "comma-separated strategies to rotate across trials")
	trials := fs.Int("trials", 256, "trial budget")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, capped at 8)")
	wall := fs.Duration("wall", 0, "wall budget; stop dispatching trials after this long (0 = no limit)")
	seed := fs.Uint64("seed", 1, "master seed; per-trial seeds derive from it")
	mutate := fs.Bool("mutate", false, "interleave mutated-demo trials with the seed rotation (schedule fuzzing)")
	mutBudget := fs.Int("mutation-budget", 0, "cap on mutated trials emitted (0 = no cap; requires -mutate)")
	seedCorpus := fs.String("seed-corpus", "", "pre-seed the mutation queue with this corpus file's demos (requires -mutate)")
	minimize := fs.Bool("minimize", true, "minimize each distinct failure's demo by re-validated replay")
	minBudget := fs.Int("min-budget", 48, "replay budget per minimized failure")
	corpusPath := fs.String("corpus", "", "write the JSON corpus of minimized demos to this file")
	out1 := fs.String("o", "", "write the first failure's minimized demo to this file")
	verify := fs.Bool("verify", false, "replay each written demo once more and report the result")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the hunt's tail to this path")
	metricsFlag := fs.Bool("metrics", false, "print the observability metrics table at exit")
	recordDir := fs.String("record-dir", "", "stream every trial's recording to this directory as it runs (crash insurance; failing trials' files are kept)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p, ok := litmus.ByName(*programName)
	if !ok {
		fmt.Fprintf(errOut, "unknown program %q; available:", *programName)
		for _, q := range litmus.Programs {
			fmt.Fprintf(errOut, " %s", q.Name)
		}
		fmt.Fprintln(errOut)
		return 2
	}
	var strats []demo.Strategy
	for _, name := range strings.Split(*strategies, ",") {
		strat, ok := stratOf[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(errOut, "unknown strategy %q\n", name)
			return 2
		}
		strats = append(strats, strat)
	}

	if (*mutBudget != 0 || *seedCorpus != "") && !*mutate {
		fmt.Fprintln(errOut, "-mutation-budget and -seed-corpus require -mutate")
		return 2
	}
	rotation := &explore.SeedRotation{MasterSeed: *seed, Strategies: strats}
	var source explore.TrialSource = rotation
	if *mutate {
		mq := &explore.MutationQueue{Seed: *seed, Budget: *mutBudget, AdoptPassing: true}
		if *seedCorpus != "" {
			c, err := explore.ReadCorpusFile(*seedCorpus)
			if err != nil {
				fmt.Fprintln(errOut, err)
				return 1
			}
			if err := mq.SeedCorpus(c); err != nil {
				fmt.Fprintln(errOut, err)
				return 1
			}
		}
		var err error
		source, err = explore.NewWeightedSource(
			[]explore.TrialSource{rotation, mq}, []int{1, 1})
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
	}

	sess := obs.NewSession(*tracePath, *metricsFlag)
	cfg := explore.Config{
		Program:        explore.Program{Name: p.Name, Body: p.Body},
		Source:         source,
		Trials:         *trials,
		Workers:        *workers,
		WallBudget:     *wall,
		Minimize:       *minimize,
		MinimizeBudget: *minBudget,
		RecordDir:      *recordDir,
		Trace:          sess.Tracer,
		Metrics:        sess.Metrics,
	}
	if *recordDir != "" {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
	}
	fmt.Fprintf(out, "hunting in %s: %d trials over %s (master seed %d)\n",
		p.Name, cfg.Trials, *strategies, *seed)
	res, err := explore.Run(cfg)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}

	fmt.Fprintf(out, "ran %d trials in %v (%.0f trials/sec): %d failing, %d distinct, %d deduped\n",
		res.Trials, res.Elapsed.Round(time.Millisecond), res.TrialsPerSec(),
		res.Failing, len(res.Failures), res.DedupeHits)
	if *mutate {
		fmt.Fprintf(out, "mutation: %d mutated trials, %d diverged from their candidate schedule\n",
			res.Mutants, res.DivergedTrials)
	}
	if res.WallExpired {
		fmt.Fprintf(out, "wall budget expired after %d trials\n", res.Trials)
	}
	for i, f := range res.Failures {
		fmt.Fprintf(out, "failure %d: trial %d (%s seed %#x), %d duplicates\n",
			i, f.Spec.Index, f.Spec.Strategy, f.Spec.Seed1, f.Duplicates)
		if f.Ancestor != "" {
			fmt.Fprintf(out, "    lineage: %s <- %s\n", strings.Join(f.OpChain, "+"), f.Ancestor)
		}
		for _, r := range f.Races {
			fmt.Fprintf(out, "    %s\n", r)
		}
		if f.Err != "" {
			fmt.Fprintf(out, "    %s\n", f.Err)
		}
		if f.DemoPath != "" {
			fmt.Fprintf(out, "    streamed recording: %s\n", f.DemoPath)
		}
		if *minimize && f.Demo != nil {
			status := "did not reproduce; kept unminimized"
			if f.Reproduced {
				status = fmt.Sprintf("minimized %d -> %d bytes (final tick %d -> %d)",
					f.Demo.Size(), f.Minimized.Size(), f.Demo.FinalTick, f.Minimized.FinalTick)
			}
			fmt.Fprintf(out, "    %s in %d replays\n", status, f.MinimizeReplays)
		}
		if *verify && f.Minimized != nil {
			if msg, ok := verifyDemo(&cfg, f.Minimized); ok {
				fmt.Fprintf(out, "    verify: %s\n", msg)
			} else {
				fmt.Fprintf(out, "    verify FAILED: %s\n", msg)
			}
		}
	}

	if *corpusPath != "" {
		if err := res.Corpus().WriteFile(*corpusPath); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		fmt.Fprintf(out, "corpus: %d entries written to %s\n", len(res.Failures), *corpusPath)
	}
	if *out1 != "" {
		if len(res.Failures) == 0 {
			fmt.Fprintf(errOut, "no failure found in %d trials; nothing to write to %s\n", res.Trials, *out1)
			return 1
		}
		d := res.Failures[0].Minimized
		if err := demo.WriteFile(*out1, d); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		fmt.Fprintf(out, "demo written to %s (%d bytes); inspect with demoinspect\n", *out1, d.Size())
	}
	if err := sess.Finish(out); err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	return 0
}

// verifyDemo replays d once with race reporting on and summarises what
// came back, the -verify spot check on every demo racehunt ships.
func verifyDemo(cfg *explore.Config, d *demo.Demo) (string, bool) {
	opts := core.ReplayOptions(d)
	opts.Trace = cfg.Trace
	opts.Metrics = cfg.Metrics
	rt, err := core.New(opts)
	if err != nil {
		return err.Error(), false
	}
	rep, _ := rt.Run(cfg.Program.Body(rt))
	msg := fmt.Sprintf("races=%d softDesync=%v", rep.RaceCount(), rep.SoftDesync)
	if rep.Err != nil {
		msg += " err=" + rep.Err.Error()
	}
	// A failure demo should replay to a failure; a clean replay means the
	// demo no longer pins down the bug.
	return msg, rep.Failed()
}
