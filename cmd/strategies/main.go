// Command strategies compares the bug-finding effectiveness of the
// scheduling strategies — random, queue, PCT and delay bounding — over the
// litmus suite, extending the paper's Table 1 with its §7 future-work
// strategies. For each program it reports each strategy's race rate and
// the mean number of seeds to first race (the budget a bug hunt needs).
//
// Usage:
//
//	strategies [-runs N] [-budget B]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/litmus"
	"repro/internal/apps/modes"
	"repro/internal/stats"
)

var strategyNames = []string{"rnd", "pct", "delay", "queue"}

func main() {
	runs := flag.Int("runs", 300, "runs per program per strategy for the rate")
	budget := flag.Int("budget", 200, "max seeds when measuring time-to-first-race")
	flag.Parse()

	table := &stats.Table{Header: append([]string{"Test"}, header()...)}
	for _, p := range litmus.Programs {
		row := []string{p.Name}
		for _, mode := range strategyNames {
			raced := 0
			for r := 0; r < *runs; r++ {
				opts, err := modes.Options(mode, uint64(r)*6007+29, true)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				res := litmus.RunOnce(p, opts)
				if res.Err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s: %v\n", p.Name, mode, res.Err)
					os.Exit(1)
				}
				if res.Races > 0 {
					raced++
				}
			}
			first := firstRaceSeed(p, mode, *budget)
			row = append(row,
				fmt.Sprintf("%.1f%%", 100*float64(raced)/float64(*runs)),
				firstStr(first, *budget))
		}
		table.AddRow(row...)
	}
	fmt.Printf("Strategy comparison over the CDSchecker suite (%d runs per rate)\n\n", *runs)
	fmt.Print(table.String())
	fmt.Println("\n\"first\" is the number of seeds until the first racy execution")
	fmt.Println("(a bug hunter's budget); PCT and delay bounding are the paper's")
	fmt.Println("§7 future-work strategies, implemented here as extensions.")
}

func header() []string {
	var h []string
	for _, s := range strategyNames {
		h = append(h, s+" rate", s+" first")
	}
	return h
}

func firstRaceSeed(p litmus.Program, mode string, budget int) int {
	for seed := 1; seed <= budget; seed++ {
		opts, err := modes.Options(mode, uint64(seed)*31+1, true)
		if err != nil {
			return -1
		}
		res := litmus.RunOnce(p, opts)
		if res.Err == nil && res.Races > 0 {
			return seed
		}
	}
	return -1
}

func firstStr(seed, budget int) string {
	if seed < 0 {
		return fmt.Sprintf(">%d", budget)
	}
	return fmt.Sprintf("%d", seed)
}
