// Command parsecbench regenerates Tables 3 and 4: execution times and
// native-relative overheads for the pbzip and PARSEC-model benchmarks
// across the eight tool configurations.
//
// Usage:
//
//	parsecbench [-runs N] [-threads T] [-size S] [-input KB]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps/modes"
	"repro/internal/apps/parsec"
	"repro/internal/apps/pbzip"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

var configurations = []string{"native", "tsan11", "rr", "tsan11+rr", "rnd", "queue", "rnd+rec", "queue+rec"}

func main() {
	runs := flag.Int("runs", 3, "runs per cell (paper: 10)")
	threads := flag.Int("threads", 4, "worker threads (paper: 4)")
	size := flag.Int("size", 1, "workload scale factor")
	inputKB := flag.Int("input", 256, "pbzip input size in KiB (paper: 400MB)")
	modeList := flag.String("modes", strings.Join(configurations, ","), "modes")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the runs' tail to this path")
	metricsFlag := flag.Bool("metrics", false, "print the observability metrics table at exit")
	flag.Parse()
	selected := strings.Split(*modeList, ",")
	sess := obs.NewSession(*tracePath, *metricsFlag)

	header := append([]string{"Program"}, selected...)
	timeTable := &stats.Table{Header: header}
	overTable := &stats.Table{Header: header}

	row := func(name string, run func(opts parsecOpts) (time.Duration, error)) {
		times := make([]*stats.Sample, len(selected))
		for i, mode := range selected {
			times[i] = &stats.Sample{}
			for r := 0; r < *runs; r++ {
				opts, err := modes.Options(mode, uint64(r)*17+3, false)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				opts.Trace, opts.Metrics = sess.Tracer, sess.Metrics
				d, err := run(parsecOpts{mode: mode, core: opts})
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s: %v\n", name, mode, err)
					os.Exit(1)
				}
				times[i].AddDuration(d)
			}
		}
		tRow := []string{name}
		oRow := []string{name}
		base := times[0].Mean()
		for i := range selected {
			tRow = append(tRow, times[i].Summary(0))
			if base > 0 {
				oRow = append(oRow, fmt.Sprintf("%.1fx", times[i].Mean()/base))
			} else {
				oRow = append(oRow, "n/a")
			}
		}
		timeTable.AddRow(tRow...)
		overTable.AddRow(oRow...)
	}

	row("pbzip", func(o parsecOpts) (time.Duration, error) {
		cfg := pbzip.DefaultConfig()
		cfg.Workers = *threads
		d, _, rep, err := pbzip.RunOnce(o.core, cfg, *inputKB<<10)
		if err == nil && rep != nil && rep.Err != nil {
			err = rep.Err
		}
		return d, err
	})
	for _, b := range parsec.Benchmarks {
		b := b
		row(b.Name, func(o parsecOpts) (time.Duration, error) {
			d, rep, err := parsec.RunOnce(b, o.core, *threads, *size)
			if err == nil && rep != nil && rep.Err != nil {
				err = rep.Err
			}
			return d, err
		})
	}

	fmt.Printf("Table 3 (model): execution times (ms), %d threads, %d runs per cell\n\n", *threads, *runs)
	fmt.Print(timeTable.String())
	fmt.Printf("\nTable 4 (model): overhead relative to %s\n\n", selected[0])
	fmt.Print(overTable.String())
	fmt.Println("\nShape expectations vs the paper: blackscholes and pbzip show the")
	fmt.Println("lowest tsan11rec overheads (compute-dominated, few visible ops);")
	fmt.Println("streamcluster/bodytrack show queue well below rnd; tsan11+rr is")
	fmt.Println("the most expensive configuration; recording adds little on top")
	fmt.Println("of controlled scheduling.")
	if err := sess.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type parsecOpts struct {
	mode string
	core core.Options
}
