package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkVisibleOpThreads/threads-2         	16940679	        81.36 ns/op
BenchmarkVisibleOpThreads/threads-128       	17494032	        67.65 ns/op
BenchmarkAtomicRelease/threads=128         	 4865202	        57.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkMutexHandoff/threads=128          	  657889	       317.4 ns/op	    1023 B/op	       1 allocs/op
PASS
ok  	repro	8.532s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, "2026-08-06", "abc123"); err != nil {
		t.Fatal(err)
	}
	var p Point
	if err := json.Unmarshal(out.Bytes(), &p); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if p.Date != "2026-08-06" || p.Commit != "abc123" {
		t.Errorf("stamp = %q/%q", p.Date, p.Commit)
	}
	if len(p.Results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(p.Results), p.Results)
	}
	want := Result{Name: "BenchmarkVisibleOpThreads/threads-2", Iters: 16940679, NsPerOp: 81.36}
	if p.Results[0] != want {
		t.Errorf("first result = %+v, want %+v", p.Results[0], want)
	}
	if r := p.Results[0]; r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Errorf("line without -benchmem got memory stats: %+v", r)
	}
	// A measured zero must survive as 0, distinct from absent.
	if r := p.Results[2]; r.Name != "BenchmarkAtomicRelease/threads=128" ||
		r.BytesPerOp == nil || *r.BytesPerOp != 0 ||
		r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Errorf("benchmem zero result = %+v, want explicit 0 B/op and 0 allocs/op", r)
	}
	if r := p.Results[3]; r.BytesPerOp == nil || *r.BytesPerOp != 1023 ||
		r.AllocsPerOp == nil || *r.AllocsPerOp != 1 {
		t.Errorf("benchmem result = %+v, want 1023 B/op and 1 allocs/op", r)
	}
	if !strings.Contains(out.String(), `"bytes_per_op": 0`) {
		t.Errorf("JSON omitted the measured-zero bytes_per_op:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok\n"), &out, "", ""); err == nil {
		t.Error("no error for input without benchmark lines")
	}
}
