package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkVisibleOpThreads/threads-2         	16940679	        81.36 ns/op
BenchmarkVisibleOpThreads/threads-128       	17494032	        67.65 ns/op
PASS
ok  	repro	8.532s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, "2026-08-06", "abc123"); err != nil {
		t.Fatal(err)
	}
	var p Point
	if err := json.Unmarshal(out.Bytes(), &p); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if p.Date != "2026-08-06" || p.Commit != "abc123" {
		t.Errorf("stamp = %q/%q", p.Date, p.Commit)
	}
	if len(p.Results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(p.Results), p.Results)
	}
	want := Result{Name: "BenchmarkVisibleOpThreads/threads-2", Iters: 16940679, NsPerOp: 81.36}
	if p.Results[0] != want {
		t.Errorf("first result = %+v, want %+v", p.Results[0], want)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok\n"), &out, "", ""); err == nil {
		t.Error("no error for input without benchmark lines")
	}
}
