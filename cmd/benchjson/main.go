// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark-trajectory point on stdout. CI runs it after the scheduler
// benchmarks and archives the result as BENCH_<date>.json, so per-op cost
// regressions show up as a series rather than a single lost log line.
//
// Usage:
//
//	go test -bench BenchmarkVisibleOpThreads -run '^$' . | benchjson -date 2026-08-06 -commit abc123
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// Result is one benchmark line. BytesPerOp/AllocsPerOp are present only
// when the run used -benchmem; they are pointers so that a genuine
// measured zero (the detector release path's target) survives JSON
// round-tripping distinct from "not measured".
type Result struct {
	Name        string   `json:"name"`
	Iters       int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Point is one trajectory entry: every benchmark of one run.
type Point struct {
	Date    string   `json:"date,omitempty"`
	Commit  string   `json:"commit,omitempty"`
	Results []Result `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op` +
	`(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func run(in io.Reader, out io.Writer, date, commit string) error {
	p := Point{Date: date, Commit: commit}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		r := Result{Name: m[1], Iters: iters, NsPerOp: ns}
		if m[4] != "" {
			bytesOp, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return fmt.Errorf("benchjson: bad B/op in %q: %v", sc.Text(), err)
			}
			allocsOp, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return fmt.Errorf("benchjson: bad allocs/op in %q: %v", sc.Text(), err)
			}
			r.BytesPerOp = &bytesOp
			r.AllocsPerOp = &allocsOp
		}
		p.Results = append(p.Results, r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(p.Results) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

func main() {
	date := flag.String("date", "", "ISO date stamp for the trajectory point")
	commit := flag.String("commit", "", "commit hash the benchmarks ran at")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *date, *commit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
