// Command tsandebug is an interactive, scriptable time-travel debugger
// over recorded demos. It replays a demo under debugger control, takes
// sparse checkpoints (stream offsets + PRNG state + tick count + thread
// states — no memory snapshots), and navigates the execution in both
// directions: run-to-tick, step, step-thread, reverse-step,
// reverse-continue to the last write of a raced variable, breakpoints on
// (variable, op-kind, thread) predicates, trace-window and state dumps.
// Travelling backwards restarts the replay from the nearest checkpoint
// and verifies bit-identical convergence before handing control back.
//
// Usage:
//
//	tsandebug -program ms-queue -demo race.demo              # REPL
//	tsandebug -program ms-queue -demo race.demo -script s.dbg
//	tsandebug -program ms-queue -demo race.demo -e 'run-to-tick 40; state'
//
// Exit status: 0 when every command succeeded, 1 for a session or command
// failure, 2 for a usage error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/apps/litmus"
	"repro/internal/debugger"
	"repro/internal/demo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, in io.Reader, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tsandebug", flag.ContinueOnError)
	fs.SetOutput(errOut)
	progName := fs.String("program", "", "litmus program the demo was recorded from (required)")
	demoPath := fs.String("demo", "", "demo file to debug (required)")
	script := fs.String("script", "", "run commands from this file instead of a REPL")
	expr := fs.String("e", "", "run these semicolon-separated commands instead of a REPL")
	every := fs.Uint64("checkpoint-every", 64, "checkpoint interval in ticks")
	ring := fs.Int("trace-ring", 0, "live trace ring capacity (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *progName == "" || *demoPath == "" || fs.NArg() != 0 {
		fmt.Fprintln(errOut, "usage: tsandebug -program <litmus program> -demo <file> [-script file | -e 'cmd; cmd'] [-checkpoint-every N]")
		fmt.Fprintf(errOut, "programs: %s\n", strings.Join(litmusNames(), ", "))
		return 2
	}
	p, ok := litmus.ByName(*progName)
	if !ok {
		fmt.Fprintf(errOut, "tsandebug: unknown program %q (known: %s)\n", *progName, strings.Join(litmusNames(), ", "))
		return 2
	}
	d, err := demo.ReadFile(*demoPath)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}

	sess, err := debugger.New(debugger.Program{Name: p.Name, Body: p.Body}, d,
		debugger.Options{CheckpointEvery: *every, TraceRing: *ring})
	if err != nil {
		fmt.Fprintf(errOut, "tsandebug: %v\n", err)
		return 1
	}
	defer sess.Close()
	ex := &debugger.Executor{S: sess, W: out}

	switch {
	case *script != "" && *expr != "":
		fmt.Fprintln(errOut, "tsandebug: -script and -e are mutually exclusive")
		return 2
	case *script != "":
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		defer f.Close()
		return runScript(ex, bufio.NewScanner(f), out)
	case *expr != "":
		lines := strings.Split(*expr, ";")
		return runLines(ex, lines, out)
	default:
		return repl(ex, in, out)
	}
}

// runScript executes commands from a scanner, echoing each before its
// output (the transcript CI archives). The first failing command ends the
// run with status 1 — scripted sessions are assertions, not conversations.
func runScript(ex *debugger.Executor, sc *bufio.Scanner, out io.Writer) int {
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return runLines(ex, lines, out)
}

func runLines(ex *debugger.Executor, lines []string, out io.Writer) int {
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Fprintf(out, "(tsandebug) %s\n", line)
		quit, err := ex.Exec(line)
		if err != nil {
			return 1
		}
		if quit {
			break
		}
	}
	return 0
}

// repl is the interactive loop: command errors are printed and the
// session continues.
func repl(ex *debugger.Executor, in io.Reader, out io.Writer) int {
	fmt.Fprintln(out, "tsandebug — time-travel debugger (help for commands)")
	ex.Exec("info")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "(tsandebug) ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return 0
		}
		quit, _ := ex.Exec(sc.Text())
		if quit {
			return 0
		}
	}
}

func litmusNames() []string {
	names := make([]string, 0, len(litmus.Programs))
	for _, p := range litmus.Programs {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}
