package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestScriptSmoke drives the checked-in demo through the checked-in smoke
// script — the same invocation CI runs and archives.
func TestScriptSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-program", "ms-queue",
		"-demo", "testdata/msqueue.demo",
		"-script", "testdata/smoke.script",
	}, strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"program   ms-queue",
		"race 0    data race on msq.value",
		"at tick 300",
		"last write to \"msq.value\"",
		"trace ticks 290..300",
		"checkpoint 0 converges bit-identically",
		"at end: tick 395 (replay complete)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("transcript missing %q\ntranscript:\n%s", want, got)
		}
	}
}

// TestInlineCommands covers -e mode.
func TestInlineCommands(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-program", "ms-queue",
		"-demo", "testdata/msqueue.demo",
		"-e", "run-to-tick 50; reverse-step; where",
	}, strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "at tick 49") {
		t.Errorf("expected position 49 after reverse-step:\n%s", out.String())
	}
}

// TestREPL drives the interactive loop over a reader.
func TestREPL(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-program", "ms-queue",
		"-demo", "testdata/msqueue.demo",
	}, strings.NewReader("step\nwhere\nquit\n"), &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "at tick 1") {
		t.Errorf("REPL transcript missing position:\n%s", out.String())
	}
}

// TestFailingScript: a script whose command fails must exit 1 (CI relies
// on scripted sessions being assertions).
func TestFailingScript(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-program", "ms-queue",
		"-demo", "testdata/msqueue.demo",
		"-e", "run-to-tick not-a-number",
	}, strings.NewReader(""), &out, &errOut)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstdout:\n%s", code, out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("missing flags: run = %d, want 2", code)
	}
	if code := run([]string{"-program", "nope", "-demo", "testdata/msqueue.demo"},
		strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("unknown program: run = %d, want 2", code)
	}
}
