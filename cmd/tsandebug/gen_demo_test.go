package main

import (
	"flag"
	"testing"

	"repro/internal/apps/litmus"
	"repro/internal/core"
	"repro/internal/demo"
)

var update = flag.Bool("update", false, "regenerate testdata/msqueue.demo")

// TestGenerateTestdata regenerates the checked-in smoke demo: the first
// seeded ms-queue recording (random strategy, seeds scanned from 1) that
// detects a data race. Run with:
//
//	go test ./cmd/tsandebug -run TestGenerateTestdata -update
func TestGenerateTestdata(t *testing.T) {
	if !*update {
		t.Skip("pass -update to regenerate testdata")
	}
	p, _ := litmus.ByName("ms-queue")
	for seed := uint64(1); seed <= 100; seed++ {
		rt, err := core.New(core.RecordOptions(demo.StrategyRandom, seed, seed*3+1))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(p.Body(rt))
		if err != nil || len(rep.Races) == 0 {
			continue
		}
		if err := rep.Demo.WriteFile("testdata/msqueue.demo"); err != nil {
			t.Fatal(err)
		}
		t.Logf("seeds %d/%d: %d ticks, race on %s",
			seed, seed*3+1, rep.Demo.FinalTick, rep.Races[0].Location)
		return
	}
	t.Fatal("no racy ms-queue recording in 100 seeds")
}
