// Command gamebench regenerates Table 5 (QuakeSpasm-model uncapped frame
// rates across tool configurations) and the §5.4 experiments: capped-fps
// playability, the Zandronum-model networked-bug record/replay (-bug), and
// the sparse-vs-full ioctl policy comparison (-policy).
//
// Usage:
//
//	gamebench [-seconds S] [-plays P]            # Table 5
//	gamebench -bug                               # bug record/replay
//	gamebench -policy                            # ioctl policy study
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/game"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	seconds := flag.Float64("seconds", 2, "virtual play time per run (paper: 90)")
	plays := flag.Int("plays", 3, "plays per configuration (paper: 5)")
	bug := flag.Bool("bug", false, "run the networked stale-state bug record/replay experiment")
	policy := flag.Bool("policy", false, "run the ioctl recording-policy comparison")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the runs' tail to this path")
	metricsFlag := flag.Bool("metrics", false, "print the observability metrics table at exit")
	flag.Parse()
	sess := obs.NewSession(*tracePath, *metricsFlag)

	switch {
	case *bug:
		bugExperiment(*seconds, sess)
	case *policy:
		policyExperiment(*seconds, sess)
	default:
		table5(*seconds, *plays, sess)
	}
	if err := sess.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func table5(seconds float64, plays int, sess *obs.Session) {
	cfg := game.DefaultConfig()
	cfg.PlayNanos = int64(seconds * float64(time.Second))
	cfg.Trace, cfg.Metrics = sess.Tracer, sess.Metrics
	srv := game.DefaultServerConfig()

	table := &stats.Table{Header: []string{"Setup", "Min", "25th", "Median", "75th", "Max", "Mean", "Overhead"}}
	var nativeMean float64
	for _, mode := range []string{"native", "tsan11", "rnd", "queue", "rnd+rec", "queue+rec"} {
		fps := &stats.Sample{}
		for p := 0; p < plays; p++ {
			out := game.Play(cfg, srv, mode, uint64(p)*13+5)
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "%s play %d: %v\n", mode, p, out.Err)
				os.Exit(1)
			}
			for _, f := range out.FPS {
				fps.Add(f)
			}
		}
		if mode == "native" {
			nativeMean = fps.Mean()
		}
		over := "1.0x"
		if nativeMean > 0 && fps.Mean() > 0 {
			over = fmt.Sprintf("%.1fx", nativeMean/fps.Mean())
		}
		table.AddRow(mode,
			fmt.Sprintf("%.0f", fps.Min()),
			fmt.Sprintf("%.0f", fps.Quantile(0.25)),
			fmt.Sprintf("%.0f", fps.Median()),
			fmt.Sprintf("%.0f", fps.Quantile(0.75)),
			fmt.Sprintf("%.0f", fps.Max()),
			fmt.Sprintf("%.1f", fps.Mean()),
			over)
	}
	fmt.Printf("Table 5 (model): uncapped fps, %d plays x %.1fs per configuration\n\n", plays, seconds)
	fmt.Print(table.String())
}

func bugExperiment(seconds float64, sess *obs.Session) {
	cfg := game.DefaultConfig()
	cfg.Network = true
	cfg.PlayNanos = int64(seconds * float64(time.Second))
	cfg.Trace, cfg.Metrics = sess.Tracer, sess.Metrics
	srv := game.DefaultServerConfig()
	srv.Buggy = true
	srv.MapChangeEvery = 10
	srv.ExtraClients = 1

	fmt.Println("Recording networked play against the buggy server (Zandronum #2380 model)...")
	for seed := uint64(1); ; seed++ {
		opts := core.RecordOptions(demo.StrategyQueue, seed, seed*7)
		opts.Policy = core.PolicySparse
		out := game.PlayOpts(cfg, srv, opts)
		if out.Err != nil {
			fmt.Fprintln(os.Stderr, out.Err)
			os.Exit(1)
		}
		if !game.BugManifested(out.Report.Output) {
			fmt.Printf("  attempt %d: bug did not manifest, retrying\n", seed)
			continue
		}
		d := out.Report.Demo
		fmt.Printf("  bug manifested on attempt %d; demo is %d bytes (syscall section %d)\n",
			seed, d.Size(), d.SectionSizes()["syscall"])
		fmt.Println("Replaying offline (no server, no input injector)...")
		rep := game.Replay(cfg, d, core.PolicySparse)
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "replay failed: %v\n", rep.Err)
			os.Exit(1)
		}
		if game.BugManifested(rep.Report.Output) {
			fmt.Println("  bug reproduced during replay; display accepted",
				rep.Frames, "live frames")
		} else {
			fmt.Println("  BUG NOT REPRODUCED — replay diverged")
			os.Exit(1)
		}
		return
	}
}

func policyExperiment(seconds float64, sess *obs.Session) {
	cfg := game.DefaultConfig()
	cfg.PlayNanos = int64(seconds * float64(time.Second))
	cfg.Trace, cfg.Metrics = sess.Tracer, sess.Metrics
	srv := game.DefaultServerConfig()

	table := &stats.Table{Header: []string{"Policy", "Demo bytes", "Replay frames", "Replay status"}}
	for _, pol := range []core.Policy{core.PolicySparse, core.PolicyFull} {
		opts := core.RecordOptions(demo.StrategyQueue, 3, 9)
		opts.Policy = pol
		out := game.PlayOpts(cfg, srv, opts)
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pol.Name, out.Err)
			os.Exit(1)
		}
		rep := game.Replay(cfg, out.Report.Demo, pol)
		status := "synchronised"
		if rep.Err != nil {
			status = rep.Err.Error()
		} else if rep.Report.SoftDesync {
			status = "soft desync"
		}
		table.AddRow(pol.Name,
			fmt.Sprintf("%d", out.Report.Demo.Size()),
			fmt.Sprintf("%d", rep.Frames),
			status)
	}
	// rr refuses outright.
	out := game.Play(cfg, srv, "rr", 3)
	status := "ok"
	if out.Err != nil {
		status = out.Err.Error()
	}
	table.AddRow("rr(refuses ioctl)", "-", "-", status)
	fmt.Println("Sparse-vs-full ioctl recording (§5.4 model):")
	fmt.Println()
	fmt.Print(table.String())
	fmt.Println("\nSparse: small demo, live display during replay. Full: bloated")
	fmt.Println("demo, replayed display is mocked out (0 frames). rr: out of scope.")
}
