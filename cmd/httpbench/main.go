// Command httpbench regenerates Table 2: httpd-model throughput and race
// rate under native, rr, tsan11, tsan11+rr, and the tsan11rec strategies
// with and without recording — plus the §5.2 demo-size-per-request
// accounting (-demosize).
//
// Usage:
//
//	httpbench [-requests N] [-concurrency C] [-runs R] [-noreports] [-demosize]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps/httpd"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	requests := flag.Int("requests", 2000, "queries per run (paper: 10000)")
	concurrency := flag.Int("concurrency", 10, "concurrent client threads")
	runs := flag.Int("runs", 3, "runs per configuration (paper: 10)")
	workers := flag.Int("workers", 4, "server worker threads")
	modeList := flag.String("modes", "native,rr,tsan11,tsan11+rr,rnd,queue,rnd+rec,queue+rec", "modes")
	noReports := flag.Bool("noreports", false, "suppress race reports (the paper's 'No reports' columns)")
	demoSize := flag.Bool("demosize", false, "report demo size per request instead of throughput")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the runs' tail to this path")
	metricsFlag := flag.Bool("metrics", false, "print the observability metrics table at exit")
	flag.Parse()
	sess := obs.NewSession(*tracePath, *metricsFlag)

	cfg := httpd.DefaultConfig()
	cfg.Workers = *workers
	cfg.Trace, cfg.Metrics = sess.Tracer, sess.Metrics

	if *demoSize {
		demoSizeReport(cfg, *concurrency)
		return
	}

	table := &stats.Table{Header: []string{"Setup", "Throughput(q/s)", "Overhead", "Races/run"}}
	var nativeMean float64
	for _, mode := range strings.Split(*modeList, ",") {
		thr := &stats.Sample{}
		races := &stats.Sample{}
		for r := 0; r < *runs; r++ {
			out := httpd.RunExperiment(cfg, mode, uint64(r)*31+7, !*noReports, *requests, *concurrency)
			if out.Err != nil {
				fmt.Fprintf(os.Stderr, "%s run %d: %v\n", mode, r, out.Err)
				os.Exit(1)
			}
			if out.Load.Completed < *requests {
				fmt.Fprintf(os.Stderr, "%s run %d: only %d/%d completed\n", mode, r, out.Load.Completed, *requests)
			}
			thr.Add(out.Load.Throughput())
			races.Add(float64(out.Races()))
		}
		if mode == "native" {
			nativeMean = thr.Mean()
		}
		overhead := "N/A"
		if nativeMean > 0 {
			overhead = fmt.Sprintf("%.1fx", stats.Overhead(nativeMean, thr.Mean()))
		}
		table.AddRow(mode, thr.Summary(0), overhead, races.Summary(1))
	}
	reports := "race reports enabled"
	if *noReports {
		reports = "no reports"
	}
	fmt.Printf("Table 2 (model): httpd, %d queries x %d clients, %d runs per row (%s)\n\n",
		*requests, *concurrency, *runs, reports)
	fmt.Print(table.String())
	if err := sess.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func demoSizeReport(cfg httpd.Config, concurrency int) {
	fmt.Println("Demo size accounting (§5.2 model): bytes per request")
	table := &stats.Table{Header: []string{"Mode", "Requests", "Demo bytes", "Bytes/request", "of which syscall"}}
	for _, mode := range []string{"rnd+rec", "queue+rec"} {
		for _, n := range []int{200, 1000} {
			out := httpd.RunExperiment(cfg, mode, 11, false, n, concurrency)
			if out.Err != nil {
				fmt.Fprintln(os.Stderr, out.Err)
				os.Exit(1)
			}
			d := out.Report.Demo
			sizes := d.SectionSizes()
			table.AddRow(mode, fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", d.Size()),
				fmt.Sprintf("%.1f", float64(d.Size())/float64(n)),
				fmt.Sprintf("%d", sizes["syscall"]))
		}
	}
	fmt.Print(table.String())
	fmt.Println("\nThe paper reports ~4.8KB/request for tsan11rec's demos and that")
	fmt.Println("size grows linearly with request count; compare Bytes/request")
	fmt.Println("across the two request counts.")
}
