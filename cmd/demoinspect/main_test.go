package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/demo"
)

func sampleDemo() *demo.Demo {
	return &demo.Demo{
		Strategy:  demo.StrategyQueue,
		Seed1:     11,
		Seed2:     22,
		FinalTick: 3,
		Queue: demo.Queue{
			FirstTick: map[int32]uint64{0: 1, 1: 2},
			Ticks:     []uint64{2, 0, 0},
		},
		Signals:  []demo.SignalEvent{{TID: 1, Tick: 2, Sig: 15}},
		Syscalls: []demo.SyscallRecord{{TID: 0, Kind: 3, Ret: 42, Bufs: [][]byte{[]byte("payload")}}},
	}
}

func writeDemo(t *testing.T, d *demo.Demo) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "demo.bin")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidDemo(t *testing.T) {
	path := writeDemo(t, sampleDemo())
	var out, errOut bytes.Buffer
	if code := run([]string{"-v", path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"strategy:    queue", "validation:  ok", "SIGNAL events"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.bin")
	if err := os.WriteFile(path, []byte("TSANREC1 not really"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
}

// TestRunInvalidDemo covers the satellite requirement: a demo that decodes
// but fails validation must exit nonzero (previously demoinspect printed
// it happily and exited 0).
func TestRunInvalidDemo(t *testing.T) {
	d := sampleDemo()
	d.Queue.Ticks = []uint64{0, 0, 0} // tick 3 ends up with no scheduled thread
	path := writeDemo(t, d)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "cannot replay") {
		t.Errorf("stderr missing validation error: %s", errOut.String())
	}
}

// TestRunUnreplayableDemos feeds demoinspect the decodable-but-corrupt
// shapes from the fuzz corpus — a zero-thread queue demo claiming ticks
// happened, and a FinalTick of ^uint64(0) (whose +1 used to wrap the
// replayer's schedule allocation and panic). Each must produce a diagnostic
// exit 1, never a panic.
func TestRunUnreplayableDemos(t *testing.T) {
	cases := []struct {
		name string
		d    *demo.Demo
	}{
		{"zero-thread-nonzero-final", &demo.Demo{Strategy: demo.StrategyQueue, Seed1: 1, Seed2: 2, FinalTick: 5}},
		{"maxuint64-final-tick", &demo.Demo{Strategy: demo.StrategyQueue, FinalTick: ^uint64(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeDemo(t, tc.d)
			var out, errOut bytes.Buffer
			if code := run([]string{"-v", path}, &out, &errOut); code != 1 {
				t.Fatalf("run = %d, want 1; stderr: %s", code, errOut.String())
			}
			if !strings.Contains(errOut.String(), "cannot replay") {
				t.Errorf("stderr missing validation error: %s", errOut.String())
			}
		})
	}
}

// TestRunWindow is the -window golden test: the sample demo's queue
// schedule is tick 1 -> thread 0, tick 2 -> thread 1, tick 3 -> thread 0,
// with a signal keyed to tick 2; the window 2..3 must render exactly
// those events.
func TestRunWindow(t *testing.T) {
	path := writeDemo(t, sampleDemo())
	var out, errOut bytes.Buffer
	if code := run([]string{"-window", "2..3", path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errOut.String())
	}
	golden := "window 2..3:\n" +
		fmt.Sprintf("  QUEUE  tick %-8d schedule thread %d\n", 2, 1) +
		fmt.Sprintf("  QUEUE  tick %-8d schedule thread %d\n", 3, 0) +
		fmt.Sprintf("  SIGNAL tick %-8d sig %d -> thread %d\n", 2, 15, 1)
	if !strings.Contains(out.String(), golden) {
		t.Errorf("output missing golden window block:\n--- want ---\n%s--- got ---\n%s", golden, out.String())
	}
}

func TestRunWindowSingleTickAndEmpty(t *testing.T) {
	path := writeDemo(t, sampleDemo())
	var out, errOut bytes.Buffer
	if code := run([]string{"-window", "1", path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "window 1..1:") ||
		!strings.Contains(out.String(), "schedule thread 0") {
		t.Errorf("single-tick window wrong:\n%s", out.String())
	}
	if strings.Contains(out.String(), "sig 15") {
		t.Errorf("window 1..1 must not contain the tick-2 signal:\n%s", out.String())
	}
}

func TestRunWindowBadRange(t *testing.T) {
	path := writeDemo(t, sampleDemo())
	var out, errOut bytes.Buffer
	if code := run([]string{"-window", "9..3", path}, &out, &errOut); code != 2 {
		t.Fatalf("run = %d, want 2 for inverted range", code)
	}
	if !strings.Contains(errOut.String(), "bad tick range") {
		t.Errorf("stderr missing range diagnostic: %s", errOut.String())
	}
}

func TestRunUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

func TestRunStats(t *testing.T) {
	path := writeDemo(t, sampleDemo())
	var out, errOut bytes.Buffer
	if code := run([]string{"-stats", path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"stream metrics:", "demo.events.signal", "demo.events.syscall", "demo.bytes.queue", "demo.bytes.header"} {
		if !strings.Contains(got, want) {
			t.Errorf("-stats output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDiffIdentical(t *testing.T) {
	a := writeDemo(t, sampleDemo())
	d := sampleDemo()
	path := filepath.Join(t.TempDir(), "copy.bin")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", a, path}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "demos are identical") {
		t.Errorf("output: %s", out.String())
	}
}

// TestRunDiffGolden pins the -diff rendering: a drop-signal + inject-async
// + header edit against the sample demo must print exactly these lines.
func TestRunDiffGolden(t *testing.T) {
	a := sampleDemo()
	b := sampleDemo()
	b.Seed1 = 0x63
	b.Signals = nil
	b.Asyncs = append(b.Asyncs, demo.AsyncEvent{Kind: demo.AsyncTimerWakeup, Tick: 2, TID: 1})
	b.Syscalls[0].Ret = 7
	pathA, pathB := writeDemo(t, a), filepath.Join(t.TempDir(), "b.bin")
	if err := b.WriteFile(pathB); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", pathA, pathB}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, errOut.String())
	}
	golden := "header   seeds: 0xb,0x16 vs 0x63,0x16\n" +
		"signal   only in A: tick 2        sig 15 -> thread 1\n" +
		"async    only in B: tick 2        timer_wakeup   thread 1\n" +
		"syscall  first mismatched record #0\n"
	if out.String() != golden {
		t.Errorf("diff output:\n%q\nwant:\n%q", out.String(), golden)
	}
}

func TestRunDiffUsageAndErrors(t *testing.T) {
	a := writeDemo(t, sampleDemo())
	var out, errOut bytes.Buffer
	if code := run([]string{"-diff", a}, &out, &errOut); code != 2 {
		t.Fatalf("one-arg -diff: run = %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-diff", a, filepath.Join(t.TempDir(), "missing.bin")}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: run = %d, want 2", code)
	}
}
