// Command demoinspect decodes a demo file and prints its header, stream
// sizes and contents — the debugging companion for the record/replay
// workflow.
//
// Usage:
//
//	demoinspect [-v] demo.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/demo"
	"repro/internal/env"
)

func main() {
	verbose := flag.Bool("v", false, "dump individual events and syscalls")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: demoinspect [-v] <demo file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d, err := demo.Decode(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("strategy:    %s\n", d.Strategy)
	fmt.Printf("seeds:       %#x %#x\n", d.Seed1, d.Seed2)
	fmt.Printf("final tick:  %d\n", d.FinalTick)
	fmt.Printf("output hash: %#x\n", d.OutputHash)
	fmt.Printf("total size:  %d bytes\n", len(data))
	fmt.Println("sections:")
	sizes := d.SectionSizes()
	keys := make([]string, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-8s %d bytes\n", k, sizes[k])
	}
	fmt.Printf("streams: %d queue threads, %d signals, %d asyncs, %d syscalls\n",
		len(d.Queue.FirstTick), len(d.Signals), len(d.Asyncs), len(d.Syscalls))

	if !*verbose {
		return
	}
	if len(d.Queue.FirstTick) > 0 {
		fmt.Println("\nQUEUE first ticks:")
		var tids []int32
		for tid := range d.Queue.FirstTick {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			fmt.Printf("  thread %d first scheduled at tick %d\n", tid, d.Queue.FirstTick[tid])
		}
	}
	if len(d.Signals) > 0 {
		fmt.Println("\nSIGNAL events (tid tick sig):")
		for _, s := range d.Signals {
			fmt.Printf("  %d %d %d\n", s.TID, s.Tick, s.Sig)
		}
	}
	if len(d.Asyncs) > 0 {
		fmt.Println("\nASYNC events:")
		for _, a := range d.Asyncs {
			fmt.Printf("  tick %-8d %-14s thread %d\n", a.Tick, a.Kind, a.TID)
		}
	}
	if len(d.Syscalls) > 0 {
		fmt.Println("\nSYSCALL records:")
		for i, sc := range d.Syscalls {
			total := 0
			for _, b := range sc.Bufs {
				total += len(b)
			}
			fmt.Printf("  #%-6d thread %-3d %-14s ret %-6d errno %-12s %d buf bytes\n",
				i, sc.TID, env.Sys(sc.Kind), sc.Ret, env.Errno(sc.Errno), total)
		}
	}
}
