// Command demoinspect decodes a demo file, validates it, and prints its
// header, stream sizes and contents — the debugging companion for the
// record/replay workflow.
//
// Usage:
//
//	demoinspect [-v] demo.bin
//	demoinspect -diff a.demo b.demo
//
// Exit status: 0 for a valid demo, 1 for a file that cannot be read,
// decoded or validated (the header and sections are still printed for a
// demo that decodes but fails validation), 2 for a usage error.
//
// With -diff the tool prints the tick-aligned difference between two
// demos — header fields, the first divergent queue-schedule tick, the
// SIGNAL/ASYNC multiset differences and the first mismatched syscall —
// the view that makes a mutated demo's edit relative to its ancestor (or
// a divergent re-recording relative to the original) legible. Exit
// status follows diff(1): 0 when identical, 1 when the demos differ, 2
// when a file cannot be read.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/demo"
	"repro/internal/env"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("demoinspect", flag.ContinueOnError)
	fs.SetOutput(errOut)
	verbose := fs.Bool("v", false, "dump individual events and syscalls")
	statsFlag := fs.Bool("stats", false, "print per-stream event counts and encoded sizes as a metrics table")
	windowFlag := fs.String("window", "", "print the stream events of tick window T1..T2 (or a single tick T)")
	recoverFlag := fs.Bool("recover", false, "recover the longest valid prefix of a torn v2 streamed recording")
	outFlag := fs.String("o", "", "write the (recovered) demo to this path as a v1 demo file")
	diffFlag := fs.Bool("diff", false, "diff two demos (tick-aligned); exit 0 identical, 1 different")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diffFlag {
		if fs.NArg() != 2 {
			fmt.Fprintln(errOut, "usage: demoinspect -diff <demo A> <demo B>")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), out, errOut)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errOut, "usage: demoinspect [-v] [-stats] [-window T1..T2] [-recover] [-o out.demo] <demo file>")
		return 2
	}
	var d *demo.Demo
	var err error
	if *recoverFlag {
		d, err = demo.Recover(fs.Arg(0))
	} else {
		d, err = demo.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}

	fmt.Fprintf(out, "strategy:    %s\n", d.Strategy)
	fmt.Fprintf(out, "seeds:       %#x %#x\n", d.Seed1, d.Seed2)
	fmt.Fprintf(out, "final tick:  %d\n", d.FinalTick)
	if d.Truncated {
		fmt.Fprintln(out, "truncated:   yes (recovered prefix of a crashed recording)")
	}
	fmt.Fprintf(out, "output hash: %#x\n", d.OutputHash)
	fmt.Fprintf(out, "total size:  %d bytes\n", d.Size())
	fmt.Fprintln(out, "sections:")
	sizes := d.SectionSizes()
	keys := make([]string, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "  %-8s %d bytes\n", k, sizes[k])
	}
	fmt.Fprintf(out, "streams: %d queue threads, %d signals, %d asyncs, %d syscalls\n",
		len(d.Queue.FirstTick), len(d.Signals), len(d.Asyncs), len(d.Syscalls))

	if *outFlag != "" {
		if err := d.WriteFile(*outFlag); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		fmt.Fprintf(out, "wrote:       %s (%d bytes)\n", *outFlag, d.Size())
	}

	status := 0
	if err := d.Validate(); err != nil {
		fmt.Fprintf(errOut, "demoinspect: demo decodes but cannot replay: %v\n", err)
		status = 1
	} else {
		fmt.Fprintln(out, "validation:  ok")
	}

	if *statsFlag {
		m := obs.NewMetrics()
		m.Add("demo.events.queue", uint64(len(d.Queue.Ticks)))
		m.Add("demo.events.signal", uint64(len(d.Signals)))
		m.Add("demo.events.async", uint64(len(d.Asyncs)))
		m.Add("demo.events.syscall", uint64(len(d.Syscalls)))
		for section, size := range sizes {
			m.Add("demo.bytes."+section, uint64(size))
		}
		fmt.Fprintln(out, "\nstream metrics:")
		fmt.Fprint(out, m.Dump())
	}

	if *windowFlag != "" {
		from, to, err := demo.ParseTickRange(*windowFlag)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		w := d.Window(from, to)
		fmt.Fprintf(out, "\nwindow %d..%d:\n", w.From, w.To)
		if w.Empty() {
			fmt.Fprintln(out, "  no recorded stream events in window")
		}
		for _, st := range w.Scheduled {
			fmt.Fprintf(out, "  QUEUE  tick %-8d schedule thread %d\n", st.Tick, st.TID)
		}
		for _, s := range w.Signals {
			fmt.Fprintf(out, "  SIGNAL tick %-8d sig %d -> thread %d\n", s.Tick, s.Sig, s.TID)
		}
		for _, a := range w.Asyncs {
			fmt.Fprintf(out, "  ASYNC  tick %-8d %-14s thread %d\n", a.Tick, a.Kind, a.TID)
		}
	}

	if !*verbose {
		return status
	}
	if len(d.Queue.FirstTick) > 0 {
		fmt.Fprintln(out, "\nQUEUE first ticks:")
		var tids []int32
		for tid := range d.Queue.FirstTick {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			fmt.Fprintf(out, "  thread %d first scheduled at tick %d\n", tid, d.Queue.FirstTick[tid])
		}
	}
	if len(d.Signals) > 0 {
		fmt.Fprintln(out, "\nSIGNAL events (tid tick sig):")
		for _, s := range d.Signals {
			fmt.Fprintf(out, "  %d %d %d\n", s.TID, s.Tick, s.Sig)
		}
	}
	if len(d.Asyncs) > 0 {
		fmt.Fprintln(out, "\nASYNC events:")
		for _, a := range d.Asyncs {
			fmt.Fprintf(out, "  tick %-8d %-14s thread %d\n", a.Tick, a.Kind, a.TID)
		}
	}
	if len(d.Syscalls) > 0 {
		fmt.Fprintln(out, "\nSYSCALL records:")
		for i, sc := range d.Syscalls {
			total := 0
			for _, b := range sc.Bufs {
				total += len(b)
			}
			fmt.Fprintf(out, "  #%-6d thread %-3d %-14s ret %-6d errno %-12s %d buf bytes\n",
				i, sc.TID, env.Sys(sc.Kind), sc.Ret, env.Errno(sc.Errno), total)
		}
	}
	return status
}

// runDiff implements -diff: decode both demos, print their tick-aligned
// difference, and return a diff(1)-style exit status.
func runDiff(pathA, pathB string, out, errOut io.Writer) int {
	a, err := demo.ReadFile(pathA)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	b, err := demo.ReadFile(pathB)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	df := demo.Diff(a, b)
	if df.Identical() {
		fmt.Fprintln(out, "demos are identical")
		return 0
	}
	for _, h := range df.Header {
		fmt.Fprintf(out, "header   %s\n", h)
	}
	if df.ScheduleDiverges {
		fmt.Fprintf(out, "schedule first divergent tick %d\n", df.FirstDivergentTick)
	}
	for _, s := range df.SignalsOnlyA {
		fmt.Fprintf(out, "signal   only in A: tick %-8d sig %d -> thread %d\n", s.Tick, s.Sig, s.TID)
	}
	for _, s := range df.SignalsOnlyB {
		fmt.Fprintf(out, "signal   only in B: tick %-8d sig %d -> thread %d\n", s.Tick, s.Sig, s.TID)
	}
	for _, a := range df.AsyncsOnlyA {
		fmt.Fprintf(out, "async    only in A: tick %-8d %-14s thread %d\n", a.Tick, a.Kind, a.TID)
	}
	for _, a := range df.AsyncsOnlyB {
		fmt.Fprintf(out, "async    only in B: tick %-8d %-14s thread %d\n", a.Tick, a.Kind, a.TID)
	}
	if df.SyscallMismatch >= 0 {
		fmt.Fprintf(out, "syscall  first mismatched record #%d\n", df.SyscallMismatch)
	}
	return 1
}
