// Command litmus regenerates Table 1: the CDSchecker benchmark comparison
// between uncontrolled tsan11, tsan11 under the rr model, and tsan11rec's
// random and queue strategies. For each program and mode it reports the
// mean execution time (with standard deviation) and the percentage of runs
// that exposed a data race.
//
// Usage:
//
//	litmus [-runs N] [-modes tsan11,tsan11+rr,rnd,queue] [-programs all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps/litmus"
	"repro/internal/apps/modes"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	runs := flag.Int("runs", 200, "executions per program per mode (paper: 1000)")
	modeList := flag.String("modes", "tsan11,tsan11+rr,rnd,queue", "comma-separated mode list")
	programs := flag.String("programs", "all", "comma-separated program list or 'all'")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the runs' tail to this path")
	metricsFlag := flag.Bool("metrics", false, "print the observability metrics table at exit")
	flag.Parse()
	sess := obs.NewSession(*tracePath, *metricsFlag)

	var selected []litmus.Program
	if *programs == "all" {
		selected = litmus.Programs
	} else {
		for _, name := range strings.Split(*programs, ",") {
			p, ok := litmus.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown program %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, p)
		}
	}
	modeNames := strings.Split(*modeList, ",")

	header := []string{"Test"}
	for _, m := range modeNames {
		header = append(header, m+" Time(ms)", m+" Rate")
	}
	table := &stats.Table{Header: header}

	for _, p := range selected {
		row := []string{p.Name}
		for _, mode := range modeNames {
			times := &stats.Sample{}
			raced := 0
			for r := 0; r < *runs; r++ {
				opts, err := modes.Options(mode, uint64(r)*7919+13, true)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				opts.Trace, opts.Metrics = sess.Tracer, sess.Metrics
				res := litmus.RunOnce(p, opts)
				if res.Err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s run %d: %v\n", p.Name, mode, r, res.Err)
					os.Exit(1)
				}
				times.AddDuration(res.Duration)
				if res.Races > 0 {
					raced++
				}
			}
			row = append(row,
				times.Summary(2),
				fmt.Sprintf("%.1f%%", 100*float64(raced)/float64(*runs)))
		}
		table.AddRow(row...)
	}
	fmt.Printf("Table 1 (model): CDSchecker benchmarks, %d runs per cell\n\n", *runs)
	fmt.Print(table.String())
	fmt.Println("\nShape expectations vs the paper: rnd exposes races the queue")
	fmt.Println("strategy orders away on most programs; dekker-fences races ~50%")
	fmt.Println("under every controlled strategy; ms-queue races always; the rr")
	fmt.Println("model adds a large constant overhead.")
	if err := sess.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
