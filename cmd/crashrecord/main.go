// Command crashrecord exercises crash-safe streaming recording end to end:
// record a litmus program to an append-only v2 demo stream (surviving
// SIGKILL mid-run), then recover and replay whatever prefix the file holds.
// It is the driver behind the CI crash-recovery smoke test, and a handy
// way to try the deployable-recording workflow by hand.
//
// Usage:
//
//	crashrecord -program ms-queue -record run.demo2 [-reps 100000]
//	            [-strategy queue] [-seed 1] [-flush 5ms]
//	crashrecord -program ms-queue -replay run.demo2
//
// Record mode runs the program body -reps times inside one controlled
// execution, streaming the recording to -record as it goes; kill the
// process at any point and the file keeps a consistent prefix. Replay mode
// loads the file (demo.ReadFile for a complete recording, falling back to
// demo.Recover for a torn one) and replays it, printing
// "replay synchronised: ..." on success — the line the CI smoke greps for.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/apps/litmus"
	"repro/internal/core"
	"repro/internal/demo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

var stratOf = map[string]demo.Strategy{
	"rnd": demo.StrategyRandom, "queue": demo.StrategyQueue,
	"pct": demo.StrategyPCT, "delay": demo.StrategyDelay,
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("crashrecord", flag.ContinueOnError)
	fs.SetOutput(errOut)
	programName := fs.String("program", "ms-queue", "litmus program to run")
	recordPath := fs.String("record", "", "stream a recording of the run to this path")
	replayPath := fs.String("replay", "", "replay the demo stream at this path (recovering a torn file)")
	reps := fs.Int("reps", 1, "repetitions of the program body inside one recorded execution")
	strategy := fs.String("strategy", "queue", "scheduling strategy for record mode (rnd, queue, pct, delay)")
	seed := fs.Uint64("seed", 1, "PRNG seed for record mode")
	flush := fs.Duration("flush", 0, "streaming flush interval (0 = 25ms default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*recordPath == "") == (*replayPath == "") {
		fmt.Fprintln(errOut, "usage: crashrecord -program P (-record path | -replay path)")
		return 2
	}
	p, ok := litmus.ByName(*programName)
	if !ok {
		fmt.Fprintf(errOut, "unknown program %q; available:", *programName)
		for _, q := range litmus.Programs {
			fmt.Fprintf(errOut, " %s", q.Name)
		}
		fmt.Fprintln(errOut)
		return 2
	}

	if *recordPath != "" {
		strat, ok := stratOf[*strategy]
		if !ok {
			fmt.Fprintf(errOut, "unknown strategy %q\n", *strategy)
			return 2
		}
		opts := core.RecordOptions(strat, *seed, *seed^0x9e3779b97f4a7c15)
		opts.RecordPath = *recordPath
		opts.RecordFlushInterval = *flush
		// A long recording is the point: raise the budgets so -reps in the
		// hundreds of thousands does not trip the runaway guards.
		opts.MaxTicks = 2_000_000_000
		opts.WallTimeout = time.Hour
		rt, err := core.New(opts)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		body := p.Body(rt)
		fmt.Fprintf(out, "recording %s x%d to %s\n", p.Name, *reps, *recordPath)
		rep, err := rt.Run(func(t *core.Thread) {
			for i := 0; i < *reps; i++ {
				body(t)
			}
		})
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		fmt.Fprintf(out, "recording complete: %d ticks, %d races, %d bytes\n",
			rep.Ticks, rep.RaceCount(), rep.Demo.Size())
		return 0
	}

	d, err := demo.ReadFile(*replayPath)
	recovered := false
	if err != nil {
		d, err = demo.Recover(*replayPath)
		recovered = true
	}
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	if recovered {
		fmt.Fprintf(out, "recovered prefix: final tick %d, truncated=%v\n", d.FinalTick, d.Truncated)
	}
	ropts := core.ReplayOptions(d)
	ropts.MaxTicks = 2_000_000_000
	ropts.WallTimeout = time.Hour
	rt, err := core.New(ropts)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	body := p.Body(rt)
	rep, _ := rt.Run(func(t *core.Thread) {
		for i := 0; i < *reps; i++ {
			body(t)
		}
	})
	if rep.Err != nil {
		fmt.Fprintf(errOut, "replay FAILED: %v\n", rep.Err)
		return 1
	}
	fmt.Fprintf(out, "replay synchronised: %d ticks, %d races, softDesync=%v, truncated=%v\n",
		rep.Ticks, rep.RaceCount(), rep.SoftDesync, d.Truncated)
	return 0
}
