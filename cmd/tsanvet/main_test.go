package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/tsan"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func runCapture(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestJSONFindingsGolden pins the -json finding schema byte-for-byte: field
// names (pos/check/message/severity), the token.Position sub-object, the
// severity spelling, and the deterministic sort order. CI consumers parse
// this; changing it is a breaking change that must update DESIGN.md too.
func TestJSONFindingsGolden(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "rawgo", "bad")
	out, _, code := runCapture(t, "-json", dir)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present)", code)
	}
	got := strings.ReplaceAll(out, root, "MODROOT")
	want, err := os.ReadFile(filepath.Join("testdata", "findings.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-json output drifted from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The bytes above imply this, but decode anyway so a future golden
	// regeneration cannot silently bless a schema break.
	var findings []struct {
		Pos struct {
			Filename string `json:"Filename"`
			Line     int    `json:"Line"`
			Column   int    `json:"Column"`
		} `json:"pos"`
		Check    string `json:"check"`
		Message  string `json:"message"`
		Severity string `json:"severity"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check == "" || f.Message == "" || f.Severity == "" || f.Pos.Line == 0 {
			t.Errorf("finding missing required field: %+v", f)
		}
	}
}

// TestSharingGolden pins the -sharing report bytes on the threadlocal clean
// fixture (positions are module-relative, so the bytes are machine-stable)
// and proves the cross-package schema contract: the report tsanvet writes is
// the report internal/tsan parses, entry for entry.
func TestSharingGolden(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "threadlocal", "clean")
	out, errOut, code := runCapture(t, "-sharing", "-", dir)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "sharing.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-sharing output drifted from golden\n--- got ---\n%s--- want ---\n%s", out, want)
	}

	rep, err := tsan.ParseSharing([]byte(out))
	if err != nil {
		t.Fatalf("internal/tsan cannot parse tsanvet's own report: %v", err)
	}
	if rep.Module != "repro" || rep.Tool != "tsanvet/threadlocal" {
		t.Errorf("parsed header = %q/%q", rep.Module, rep.Tool)
	}
	wantLocal := map[string]bool{"clean.count": true, "clean.local": true, "clean.shared": false}
	if len(rep.Entries) != len(wantLocal) {
		t.Fatalf("parsed %d entries, want %d", len(rep.Entries), len(wantLocal))
	}
	for _, e := range rep.Entries {
		local, ok := wantLocal[e.Name]
		if !ok {
			t.Errorf("unexpected entry %q", e.Name)
			continue
		}
		if e.Local != local {
			t.Errorf("entry %q: local=%v, want %v", e.Name, e.Local, local)
		}
		if !e.Local && e.Reason == "" {
			t.Errorf("entry %q: shared without a reason", e.Name)
		}
	}
}

// TestSharingFileOutput exercises the file-writing path of -sharing.
func TestSharingFileOutput(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "threadlocal", "clean")
	outFile := filepath.Join(t.TempDir(), "sharing.json")
	_, errOut, code := runCapture(t, "-sharing", outFile, dir)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errOut)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tsan.ParseSharing(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 {
		t.Error("report written to file has no entries")
	}
}
