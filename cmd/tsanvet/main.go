// Command tsanvet is a vet-style static analyzer that enforces the
// instrumentation discipline the record/replay runtime depends on: every
// visible operation in a program under test must go through the
// internal/core API, and every source of nondeterminism outside it must be
// explicitly marked. See the "Instrumentation discipline" section of
// README.md for the contract and the //tsanrec:* directives.
//
// Usage:
//
//	tsanvet [-json] [-list] [packages]
//
// Packages are directories or "dir/..." patterns (default "./...").
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tsanvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: tsanvet [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-10s %s\n", a.Name(), a.Doc())
		}
		fmt.Fprintf(out, "%-10s %s\n", lint.CheckDirective, "//tsanrec:* directives must be well-formed, justified and load-bearing")
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "tsanvet:", err)
		return 2
	}
	prog, err := lint.NewProgram(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "tsanvet:", err)
		return 2
	}
	if err := prog.Load(cwd, fs.Args()); err != nil {
		fmt.Fprintln(errOut, "tsanvet:", err)
		return 2
	}

	findings := lint.Run(prog, lint.Analyzers())
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errOut, "tsanvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "tsanvet: %d finding(s) in %d package(s)\n", len(findings), len(prog.Packages))
		return 1
	}
	return 0
}
