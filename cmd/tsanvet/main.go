// Command tsanvet is a vet-style static analyzer that enforces the
// instrumentation discipline the record/replay runtime depends on: every
// visible operation in a program under test must go through the
// internal/core API, and every source of nondeterminism outside it must be
// explicitly marked. See the "Instrumentation discipline" section of
// README.md for the contract and the //tsanrec:* directives.
//
// Usage:
//
//	tsanvet [-json] [-list] [-sharing out.json] [packages]
//
// Packages are directories or "dir/..." patterns (default "./...").
// -sharing additionally writes the threadlocal analyzer's sparsity report
// (which core.Options.Sharing consumes) to the named file, or to stdout
// when the file is "-". Exit status: 0 clean, 1 findings, 2 usage or load
// error. The JSON schemas of both outputs are documented in DESIGN.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicfile"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tsanvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the checks and exit")
	sharing := fs.String("sharing", "", "write the thread-locality sparsity report to this `file` (\"-\" for stdout)")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: tsanvet [-json] [-list] [-sharing out.json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-10s %s\n", a.Name(), a.Doc())
		}
		fmt.Fprintf(out, "%-10s %s\n", lint.CheckDirective, "//tsanrec:* directives must be well-formed, justified and load-bearing")
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "tsanvet:", err)
		return 2
	}
	prog, err := lint.NewProgram(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "tsanvet:", err)
		return 2
	}
	if err := prog.Load(cwd, fs.Args()); err != nil {
		fmt.Fprintln(errOut, "tsanvet:", err)
		return 2
	}

	findings := lint.Run(prog, lint.Analyzers())
	if *sharing != "" {
		data, err := json.MarshalIndent(lint.Sharing(prog), "", "  ")
		if err != nil {
			fmt.Fprintln(errOut, "tsanvet:", err)
			return 2
		}
		data = append(data, '\n')
		if *sharing == "-" {
			if _, err := out.Write(data); err != nil {
				fmt.Fprintln(errOut, "tsanvet:", err)
				return 2
			}
		} else if err := atomicfile.WriteFile(*sharing, data, 0o644); err != nil {
			fmt.Fprintln(errOut, "tsanvet:", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errOut, "tsanvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "tsanvet: %d finding(s) in %d package(s)\n", len(findings), len(prog.Packages))
		return 1
	}
	return 0
}
