// Command netload runs the scaling scenario: an epoll-based server under
// an open-loop arrival process of thousands of virtual connections whose
// inter-arrival gaps are drawn in VIRTUAL time, so hours of modelled
// traffic execute in wall-clock seconds. With -record the run streams a
// crash-safe demo to disk; with -replay a recorded demo re-executes
// offline, with no load generator and no live network.
//
// Usage:
//
//	netload [-conns N] [-gap-ms G] [-workers W] [-mode M] [-seed S] [-record PATH]
//	netload -replay PATH [-workers W]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/netload"
	"repro/internal/demo"
)

func main() {
	conns := flag.Int("conns", 10000, "connections to drive")
	gapMS := flag.Float64("gap-ms", 1200, "mean virtual inter-arrival gap (ms); 10k conns * 1.2s ≈ 3.3 virtual hours")
	workers := flag.Int("workers", 4, "server worker threads")
	batch := flag.Int("batch", 64, "epoll delivery batch size")
	paths := flag.Int("paths", 100, "Zipf path population")
	mode := flag.String("mode", "queue", "scheduling mode (use a +rec mode with -record)")
	seed := flag.Uint64("seed", 1, "schedule seed")
	record := flag.String("record", "", "stream the demo to this path (requires a +rec mode)")
	replay := flag.String("replay", "", "replay a recorded demo instead of running live")
	races := flag.Bool("races", true, "report races")
	flag.Parse()

	cfg := netload.DefaultConfig()
	cfg.Workers, cfg.Batch = *workers, *batch

	if *replay != "" {
		d, err := demo.ReadFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netload: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		out := netload.Replay(cfg, d, *races)
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "netload: replay: %v\n", out.Err)
			os.Exit(1)
		}
		fmt.Printf("replayed %s in %v: races=%d desync=%v\n",
			*replay, time.Since(start).Round(time.Millisecond), out.Races(), out.Report.SoftDesync)
		return
	}

	spec := netload.LoadSpec{
		Conns:   *conns,
		MeanGap: time.Duration(*gapMS * float64(time.Millisecond)),
		Paths:   *paths,
		Timeout: 60 * time.Second,
	}
	out := netload.RunScenario(cfg, spec, *mode, *seed, *races, *record)
	if out.Err != nil {
		fmt.Fprintf(os.Stderr, "netload: %v\n", out.Err)
		os.Exit(1)
	}
	fmt.Printf("conns=%d completed=%d errors=%d\n", out.Load.Requested, out.Load.Completed, out.Load.Errors)
	fmt.Printf("virtual=%v wall=%v compression=%.0fx\n",
		out.Load.Virtual.Round(time.Second), out.Load.Wall.Round(time.Millisecond),
		float64(out.Load.Virtual)/float64(out.Load.Wall+1))
	fmt.Printf("races=%d demo=%dB\n", out.Races(), out.DemoBytes())
	if *record != "" {
		fmt.Printf("recorded -> %s\n", *record)
	}
	if out.Load.Completed < out.Load.Requested {
		os.Exit(1)
	}
}
